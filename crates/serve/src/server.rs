//! The batched, multi-threaded topic-inference server.
//!
//! [`TopicServer`] is the crate's execution engine: a bounded request queue
//! drained by `n_workers` threads that coalesce waiting requests into
//! micro-batches (one snapshot load per batch), with three admission paths
//! — blocking ([`TopicServer::infer_topics`]), fail-fast
//! ([`TopicServer::try_infer_topics`]) and deadline-bounded
//! ([`TopicServer::infer_with_deadline`], the one the HTTP front-end maps
//! to `429`/`503`). Workers time every request (queue wait + fold-in) into
//! the lock-free histogram surfaced by [`ServeStats`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use saber_core::infer::PartialFoldIn;
use saber_core::model::LdaModel;
use saber_corpus::{OovPolicy, Vocabulary};
use saber_trace::{SpanRecord, TraceBuilder, TraceContext};

use crate::snapshot::{FoldInParams, InferenceSnapshot, SnapshotSampler};
use crate::stats::{HistogramSnapshot, LatencyHistogram};
use crate::swap::SnapshotCell;
use crate::ServeError;

/// Configuration of a [`TopicServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker threads draining the request queue (≥ 1).
    pub n_workers: usize,
    /// Upper bound on the number of requests a worker coalesces into one
    /// micro-batch (≥ 1). A batch loads the snapshot once and amortises
    /// queue synchronisation across its requests.
    pub max_batch: usize,
    /// Capacity of the bounded request queue; submissions block (or fail,
    /// for [`TopicServer::try_infer_topics`]) when it is full.
    pub queue_depth: usize,
    /// Fold-in quality knobs applied to every request.
    pub fold_in: FoldInParams,
    /// Sampling structure used by [`TopicServer::publish_model`].
    pub sampler: SnapshotSampler,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_workers: 4,
            max_batch: 16,
            queue_depth: 256,
            fold_in: FoldInParams::default(),
            sampler: SnapshotSampler::default(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.n_workers == 0 || self.max_batch == 0 || self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig {
                detail: "n_workers, max_batch and queue_depth must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One inference request: a document as vocabulary word ids plus the seed
/// that makes its answer reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferRequest {
    /// Word ids of the document (unordered bag of words).
    pub words: Vec<u32>,
    /// Per-request RNG seed. Equal seeds on equal words against an equal
    /// snapshot give bit-identical responses, regardless of batching or
    /// which worker serves them.
    pub seed: u64,
}

/// The answer to an [`InferRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Topic distribution `θ` of the document (length `K`, sums to 1).
    pub theta: Vec<f32>,
    /// Version of the snapshot that served the request.
    pub snapshot_version: u64,
    /// Input tokens dropped as out-of-vocabulary: unknown raw tokens on the
    /// [`TopicServer::infer_raw`] path, plus word ids a snapshot swap made
    /// unservable between admission and execution (only possible when a
    /// published snapshot shrank the vocabulary).
    pub n_oov: usize,
}

impl InferResponse {
    /// The most probable topic.
    pub fn dominant_topic(&self) -> usize {
        self.theta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }
}

/// Cumulative serving counters (all monotonic).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    tokens: AtomicU64,
    batches: AtomicU64,
    swaps_observed: AtomicU64,
    /// Queue wait + fold-in time per request, recorded by workers.
    latency: LatencyHistogram,
    /// Admission-to-dequeue time alone: how long requests sat in the queue.
    queue_wait: LatencyHistogram,
    /// Dequeue-to-reply time alone: the fold-in compute itself.
    handler: LatencyHistogram,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: u64,
    /// Tokens folded in across all requests.
    pub tokens: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Times a worker observed a newer snapshot at batch start.
    pub swaps_observed: u64,
    /// End-to-end request latency (submission to reply, i.e. queue wait plus
    /// fold-in) as a log-bucketed histogram; see
    /// [`HistogramSnapshot::p50`]/[`p95`](HistogramSnapshot::p95)/
    /// [`p99`](HistogramSnapshot::p99) for tail-latency estimates in
    /// microseconds.
    pub latency: HistogramSnapshot,
    /// The queue-wait component of `latency` alone (admission to dequeue),
    /// so overload (queue grows) is distinguishable from slow compute.
    pub queue_wait: HistogramSnapshot,
    /// The compute component of `latency` alone (dequeue to reply).
    pub handler: HistogramSnapshot,
}

impl ServeStats {
    /// Mean requests per micro-batch (0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Folds another server's counters into this one: counter-wise sums
    /// plus a bucket-wise latency-histogram merge
    /// ([`HistogramSnapshot::merge`]). This is how a sharded router reports
    /// a fleet-wide view instead of just shard 0's.
    ///
    /// `swaps_observed` merges by **max**, not sum: one fleet-wide
    /// publication is observed once per shard, and summing would multiply
    /// every swap by the shard count.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.tokens += other.tokens;
        self.batches += other.batches;
        self.swaps_observed = self.swaps_observed.max(other.swaps_observed);
        self.latency.merge(&other.latency);
        self.queue_wait.merge(&other.queue_wait);
        self.handler.merge(&other.handler);
    }
}

/// The work a queued job asks of a worker.
enum JobKind {
    /// Full fold-in: answer with θ ([`JobReply::Infer`]).
    Infer { seed: u64 },
    /// The chain half of an ESCA fold-in over this shard's words: answer
    /// with raw measured counts ([`JobReply::Partial`]).
    PartialFoldIn { seed: u64 },
    /// One EM round under the router's current θ: answer with
    /// responsibility counts ([`JobReply::Partial`]).
    EmRound { theta: Arc<Vec<f64>> },
}

/// What a worker sends back; the variant always matches the [`JobKind`].
pub(crate) enum JobReply {
    Infer(InferResponse),
    Partial(PartialResponse),
}

/// The answer to a partial fold-in request ([`TopicServer::infer_partial`]):
/// raw per-topic counts a router merges across shards before finishing θ.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialResponse {
    /// Partial sufficient statistics (ESCA measured counts or one EM
    /// round's responsibility counts; length `K`).
    pub partial: PartialFoldIn,
    /// Version of the snapshot that served the request — the router checks
    /// these match across shards before trusting a merge.
    pub snapshot_version: u64,
    /// Word ids dropped because a snapshot swap made them unservable
    /// between admission and execution.
    pub n_oov: usize,
    /// Spans recorded while serving the request, empty unless the caller
    /// passed an enabled [`TraceContext`]. For remote shards these ride the
    /// wire inline in the `/infer-partial` response; the router re-bases and
    /// re-numbers them under its own fan-out span
    /// ([`saber_trace::TraceBuilder::attach`]), so no collector is needed.
    pub spans: Vec<SpanRecord>,
}

/// A partial-computation request, fanned out by a sharding router.
#[derive(Debug, Clone)]
pub enum PartialRequest {
    /// Run the ESCA Gibbs chain over the words with this (shard-derived)
    /// seed and return the raw measured counts.
    FoldIn {
        /// Chain seed (derive per shard; see `shard::derive_shard_seed`).
        seed: u64,
    },
    /// Run one EM round against this θ and return responsibility counts.
    EmRound {
        /// Zero-based index of the EM iteration this round belongs to. The
        /// computation itself depends only on `theta`; the index rides the
        /// wire so a remote shard's logs (and the golden wire fixtures) can
        /// attribute a request to its round.
        round: usize,
        /// The router's current θ estimate (length `K`), shared across the
        /// round's fan-out.
        theta: Arc<Vec<f64>>,
    },
}

/// Per-job wall-clock attribution a worker fills in for traced requests,
/// read back by the submitter to turn into spans. Written once by the
/// worker, read once by the requester — relaxed atomics suffice.
#[derive(Debug, Default)]
pub(crate) struct JobTimings {
    /// Admission-to-dequeue, microseconds.
    pub(crate) queue_wait_us: AtomicU64,
    /// Dequeue-to-reply (the fold-in compute), microseconds.
    pub(crate) handler_us: AtomicU64,
}

/// A validated job paired with its reply channel and (for traced
/// requests only) the shared timings cell the worker stamps.
type PreparedJob = (Job, Receiver<JobReply>, Option<Arc<JobTimings>>);

struct Job {
    words: Vec<u32>,
    kind: JobKind,
    reply: SyncSender<JobReply>,
    /// When the request was admitted, so workers can attribute queue wait to
    /// the latency histogram.
    enqueued: Instant,
    /// Distributed-tracing context; disabled for untraced callers. Carried
    /// by every job so workers can attach the trace id as a latency-bucket
    /// exemplar.
    trace: TraceContext,
    /// Present only when `trace` is enabled: where the worker deposits this
    /// job's queue-wait/handler split for the submitter's spans.
    timings: Option<Arc<JobTimings>>,
}

/// A multi-threaded topic-inference server over hot-swappable snapshots.
///
/// Requests enter a bounded queue; each of the `n_workers` threads pops one
/// request, opportunistically drains up to `max_batch - 1` more, loads the
/// current [`InferenceSnapshot`] once for the whole micro-batch and answers
/// every request with the sparsity-aware fold-in sampler. Because each
/// request carries its own seed, results are reproducible no matter how
/// requests were batched.
///
/// A trainer (or anything holding the server handle) can
/// [`TopicServer::publish`] a refreshed snapshot at any time; workers pick
/// it up at their next batch without pausing the queue.
///
/// Dropping the server joins all workers after in-flight requests drain.
pub struct TopicServer {
    cell: Arc<SnapshotCell>,
    queue: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
    config: ServeConfig,
    /// Vocabulary size of the latest published snapshot, cached so request
    /// admission never touches the snapshot cell's lock. All snapshots of
    /// one server come from the same model family, so the bound is stable;
    /// the worker tolerates a stale bound by dropping unservable ids.
    vocab_bound: AtomicUsize,
    /// Serialises [`TopicServer::publish`] so `vocab_bound` and the cell
    /// swap cannot interleave across concurrent publishers (which could
    /// otherwise leave the bound permanently out of step with the served
    /// snapshot).
    publish_lock: Mutex<()>,
}

impl std::fmt::Debug for TopicServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopicServer")
            .field("config", &self.config)
            .field("snapshot_version", &self.cell.version())
            .field("n_workers", &self.workers.len())
            .finish()
    }
}

impl TopicServer {
    /// Starts a server over `initial` (published as version 1).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero workers, batch size or
    /// queue depth.
    pub fn start(initial: InferenceSnapshot, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let cell = Arc::new(SnapshotCell::new(initial));
        let (tx, rx) = sync_channel::<Job>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let counters = Arc::new(Counters::default());
        let workers = (0..config.n_workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cell = Arc::clone(&cell);
                let counters = Arc::clone(&counters);
                let fold_in = config.fold_in;
                let max_batch = config.max_batch;
                std::thread::Builder::new()
                    .name(format!("saber-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &cell, &counters, fold_in, max_batch))
                    .map_err(|e| ServeError::Internal {
                        detail: format!("failed to spawn serving worker: {e}"),
                    })
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        let vocab_bound = AtomicUsize::new(cell.load().vocab_size());
        Ok(TopicServer {
            cell,
            queue: Some(tx),
            workers,
            counters,
            config,
            vocab_bound,
            publish_lock: Mutex::new(()),
        })
    }

    /// Trains nothing, serves everything: shorthand for
    /// [`InferenceSnapshot::from_model`] + [`TopicServer::start`].
    pub fn from_model(model: &LdaModel, config: ServeConfig) -> Result<Self, ServeError> {
        TopicServer::start(InferenceSnapshot::from_model(model, config.sampler), config)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Publishes a new snapshot; returns its version. In-flight batches
    /// finish on the snapshot they started with.
    pub fn publish(&self, snapshot: InferenceSnapshot) -> u64 {
        // A poisoned publish lock only means another publisher panicked
        // mid-publish; the cell itself swaps atomically, so recover.
        let _guard = self.publish_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.vocab_bound
            .store(snapshot.vocab_size(), Ordering::Relaxed);
        self.cell.publish(snapshot)
    }

    /// Publishes a new snapshot at a caller-chosen version, the primitive
    /// behind a fleet's epoch-tagged remote commit: the shard lands on
    /// exactly the epoch the router picked, even if its own publication
    /// counter is behind (a restarted process starts back at 1).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `epoch` is not greater
    /// than the currently served version — an epoch can never move
    /// backwards, and replaying the *current* epoch is a caller-level
    /// idempotence concern (see the HTTP commit handler).
    pub fn publish_at(&self, snapshot: InferenceSnapshot, epoch: u64) -> Result<u64, ServeError> {
        let _guard = self.publish_lock.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.cell.version();
        if epoch <= current {
            return Err(ServeError::InvalidConfig {
                detail: format!("cannot publish epoch {epoch} over current epoch {current}"),
            });
        }
        self.vocab_bound
            .store(snapshot.vocab_size(), Ordering::Relaxed);
        Ok(self.cell.publish_with_version(snapshot, epoch))
    }

    /// Exports and publishes the current state of `model` using the
    /// configured sampler kind; returns the new version. This is the hook a
    /// training loop calls between iterations.
    pub fn publish_model(&self, model: &LdaModel) -> u64 {
        self.publish(InferenceSnapshot::from_model(model, self.config.sampler))
    }

    /// The currently served snapshot.
    pub fn snapshot(&self) -> Arc<InferenceSnapshot> {
        self.cell.load()
    }

    /// Current snapshot version (increments on every publish).
    pub fn snapshot_version(&self) -> u64 {
        self.cell.version()
    }

    /// Blockingly infers the topic distribution of one document.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for word ids outside the served
    /// vocabulary and [`ServeError::Closed`] if the worker pool has shut
    /// down.
    pub fn infer_topics(&self, words: Vec<u32>, seed: u64) -> Result<InferResponse, ServeError> {
        let (rx, _) = self.submit(words, JobKind::Infer { seed }, TraceContext::disabled())?;
        rx.recv()
            .map_err(|_| ServeError::Closed)
            .and_then(expect_infer)
    }

    /// Like [`TopicServer::infer_topics`] but fails fast with
    /// [`ServeError::Overloaded`] instead of blocking when the queue is full
    /// — the admission-control path for latency-sensitive callers.
    pub fn try_infer_topics(
        &self,
        words: Vec<u32>,
        seed: u64,
    ) -> Result<InferResponse, ServeError> {
        let (job, reply_rx, _) =
            self.make_job(words, JobKind::Infer { seed }, TraceContext::disabled())?;
        let queue = self.queue.as_ref().ok_or(ServeError::Closed)?;
        match queue.try_send(job) {
            Ok(()) => reply_rx
                .recv()
                .map_err(|_| ServeError::Closed)
                .and_then(expect_infer),
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    /// Blockingly computes the partial sufficient statistics of `request`
    /// over `words` — the per-shard half of a sharded fold-in (see
    /// [`crate::ShardRouter`]). Goes through the same queue, batching and
    /// latency accounting as full requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for word ids outside the served
    /// vocabulary and [`ServeError::Closed`] after shutdown.
    pub fn infer_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
    ) -> Result<PartialResponse, ServeError> {
        let (rx, _) = self.submit(words, request.into_kind(), TraceContext::disabled())?;
        rx.recv()
            .map_err(|_| ServeError::Closed)
            .and_then(expect_partial)
    }

    /// [`TopicServer::infer_partial`] with fail-fast admission and a reply
    /// deadline — the variant a router's deadline-bounded path fans out.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for out-of-range word ids,
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::DeadlineExceeded`] on timeout and
    /// [`ServeError::Closed`] after shutdown.
    pub fn infer_partial_with_deadline(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Duration,
    ) -> Result<PartialResponse, ServeError> {
        self.infer_partial_traced(words, request, deadline, TraceContext::disabled())
    }

    /// [`TopicServer::infer_partial_with_deadline`] with a distributed-trace
    /// context. When `trace` is enabled the response's
    /// [`spans`](PartialResponse::spans) carry a self-contained subtree —
    /// an `infer-partial` root with `queue-wait` and `handler` children,
    /// offsets relative to this request's admission — that a remote router
    /// stitches into its own trace with
    /// [`saber_trace::TraceBuilder::attach`].
    ///
    /// # Errors
    ///
    /// Exactly as [`TopicServer::infer_partial_with_deadline`].
    pub fn infer_partial_traced(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Duration,
        trace: TraceContext,
    ) -> Result<PartialResponse, ServeError> {
        let (job, reply_rx, timings) = self.make_job(words, request.into_kind(), trace)?;
        let queue = self.queue.as_ref().ok_or(ServeError::Closed)?;
        match queue.try_send(job) {
            Ok(()) => match reply_rx.recv_timeout(deadline) {
                Ok(reply) => {
                    let mut response = expect_partial(reply)?;
                    if let Some(timings) = &timings {
                        response.spans = partial_spans(timings);
                    }
                    Ok(response)
                }
                Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
            },
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    /// Fail-fast inference with a response deadline: rejects immediately
    /// with [`ServeError::Overloaded`] when the queue is full, and gives up
    /// with [`ServeError::DeadlineExceeded`] if no answer arrives within
    /// `deadline`. This is the admission path the HTTP front-end uses to
    /// turn overload into `429`/`503` instead of an unbounded hang.
    ///
    /// An abandoned request still completes on its worker (its reply channel
    /// has capacity for the answer, so the worker never blocks on it) — the
    /// deadline bounds the *caller's* wait, not the server's work.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for out-of-range word ids,
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::DeadlineExceeded`] on timeout and
    /// [`ServeError::Closed`] after shutdown.
    pub fn infer_with_deadline(
        &self,
        words: Vec<u32>,
        seed: u64,
        deadline: Duration,
    ) -> Result<InferResponse, ServeError> {
        let (job, reply_rx, _) =
            self.make_job(words, JobKind::Infer { seed }, TraceContext::disabled())?;
        let queue = self.queue.as_ref().ok_or(ServeError::Closed)?;
        match queue.try_send(job) {
            Ok(()) => match reply_rx.recv_timeout(deadline) {
                Ok(reply) => expect_infer(reply),
                Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
            },
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    /// [`TopicServer::infer_with_deadline`] that additionally records
    /// `queue-wait` and `handler` child spans under `parent` in `trace` —
    /// the request path the HTTP front-end's traced `/infer` handler uses.
    /// Tracing never perturbs the answer: the seed, the words and the
    /// fold-in all ignore it.
    ///
    /// # Errors
    ///
    /// Exactly as [`TopicServer::infer_with_deadline`].
    pub fn infer_traced(
        &self,
        words: Vec<u32>,
        seed: u64,
        deadline: Duration,
        trace: &mut TraceBuilder,
        parent: u64,
    ) -> Result<InferResponse, ServeError> {
        let ctx = TraceContext::child(trace.trace_id(), parent);
        let base_us = trace.elapsed_us();
        let (job, reply_rx, timings) = self.make_job(words, JobKind::Infer { seed }, ctx)?;
        let queue = self.queue.as_ref().ok_or(ServeError::Closed)?;
        let result = match queue.try_send(job) {
            Ok(()) => match reply_rx.recv_timeout(deadline) {
                Ok(reply) => expect_infer(reply),
                Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
            },
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        };
        if let (Ok(_), Some(timings)) = (&result, &timings) {
            let queue_wait_us = timings.queue_wait_us.load(Ordering::Relaxed);
            let handler_us = timings.handler_us.load(Ordering::Relaxed);
            trace.push_span(Some(parent), "queue-wait", base_us, queue_wait_us);
            trace.push_span(Some(parent), "handler", base_us + queue_wait_us, handler_us);
        }
        result
    }

    /// Submits a whole batch and waits for every answer, preserving order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the worker pool has shut down.
    pub fn infer_batch(
        &self,
        requests: Vec<InferRequest>,
    ) -> Result<Vec<InferResponse>, ServeError> {
        let receivers: Vec<_> = requests
            .into_iter()
            .map(|r| {
                self.submit(
                    r.words,
                    JobKind::Infer { seed: r.seed },
                    TraceContext::disabled(),
                )
            })
            .collect::<Result<_, _>>()?;
        receivers
            .into_iter()
            .map(|(rx, _)| {
                rx.recv()
                    .map_err(|_| ServeError::Closed)
                    .and_then(expect_infer)
            })
            .collect()
    }

    /// Encodes a raw-token document against `vocab` and infers its topics;
    /// the response carries the out-of-vocabulary count.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures ([`OovPolicy::Fail`]) and
    /// [`ServeError::Closed`].
    pub fn infer_raw<S: AsRef<str>>(
        &self,
        tokens: &[S],
        vocab: &Vocabulary,
        policy: OovPolicy,
        seed: u64,
    ) -> Result<InferResponse, ServeError> {
        let encoded = vocab.encode(tokens.iter().map(AsRef::as_ref), policy)?;
        let mut response = self.infer_topics(encoded.ids, seed)?;
        response.n_oov += encoded.n_oov;
        Ok(response)
    }

    /// [`TopicServer::infer_raw`] with the fail-fast admission and deadline
    /// semantics of [`TopicServer::infer_with_deadline`] — the raw-token
    /// path the HTTP front-end serves.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures ([`OovPolicy::Fail`]) plus everything
    /// [`TopicServer::infer_with_deadline`] can return.
    pub fn infer_raw_with_deadline<S: AsRef<str>>(
        &self,
        tokens: &[S],
        vocab: &Vocabulary,
        policy: OovPolicy,
        seed: u64,
        deadline: Duration,
    ) -> Result<InferResponse, ServeError> {
        let encoded = vocab.encode(tokens.iter().map(AsRef::as_ref), policy)?;
        let mut response = self.infer_with_deadline(encoded.ids, seed, deadline)?;
        response.n_oov += encoded.n_oov;
        Ok(response)
    }

    /// The `n` highest-probability words of topic `k` under the current
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn top_words(&self, k: usize, n: usize) -> Vec<(u32, f32)> {
        self.snapshot().top_words(k, n)
    }

    /// A point-in-time copy of the serving counters and latency histogram.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            tokens: self.counters.tokens.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            swaps_observed: self.counters.swaps_observed.load(Ordering::Relaxed),
            latency: self.counters.latency.snapshot(),
            queue_wait: self.counters.queue_wait.snapshot(),
            handler: self.counters.handler.snapshot(),
        }
    }

    /// Drains the queue and joins all workers. Called automatically on drop;
    /// explicit shutdown lets callers observe completion.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Rejects word ids the served vocabulary cannot contain. Checked at
    /// submission so a malformed request surfaces as an error to its caller
    /// instead of panicking a worker. Reads the cached bound — admission
    /// must not contend on the snapshot cell.
    fn validate_words(&self, words: &[u32]) -> Result<(), ServeError> {
        let vocab_size = self.vocab_bound.load(Ordering::Relaxed);
        match words.iter().find(|&&w| w as usize >= vocab_size) {
            None => Ok(()),
            Some(&w) => Err(ServeError::BadRequest {
                detail: format!("word id {w} out of vocabulary range (V = {vocab_size})"),
            }),
        }
    }

    /// Validates a request and pairs it with its capacity-1 reply channel.
    /// A timings cell is allocated only for traced jobs (`trace` enabled),
    /// so untraced requests pay nothing beyond copying the disabled context.
    fn make_job(
        &self,
        words: Vec<u32>,
        kind: JobKind,
        trace: TraceContext,
    ) -> Result<PreparedJob, ServeError> {
        self.validate_words(&words)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        let timings = trace.enabled().then(|| Arc::new(JobTimings::default()));
        Ok((
            Job {
                words,
                kind,
                reply: reply_tx,
                enqueued: Instant::now(),
                trace,
                timings: timings.clone(),
            },
            reply_rx,
            timings,
        ))
    }

    /// Enqueues a partial request without waiting for the reply — the
    /// router's fan-out path (submit to every shard, then collect).
    /// Blocking admission: waits when the queue is full.
    pub(crate) fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        trace: TraceContext,
    ) -> Result<(Receiver<JobReply>, Option<Arc<JobTimings>>), ServeError> {
        self.submit(words, request.into_kind(), trace)
    }

    /// Fail-fast variant of [`TopicServer::submit_partial`]:
    /// [`ServeError::Overloaded`] instead of blocking on a full queue.
    pub(crate) fn try_submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        trace: TraceContext,
    ) -> Result<(Receiver<JobReply>, Option<Arc<JobTimings>>), ServeError> {
        let (job, reply_rx, timings) = self.make_job(words, request.into_kind(), trace)?;
        let queue = self.queue.as_ref().ok_or(ServeError::Closed)?;
        match queue.try_send(job) {
            Ok(()) => Ok((reply_rx, timings)),
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    fn submit(
        &self,
        words: Vec<u32>,
        kind: JobKind,
        trace: TraceContext,
    ) -> Result<(Receiver<JobReply>, Option<Arc<JobTimings>>), ServeError> {
        let (job, reply_rx, timings) = self.make_job(words, kind, trace)?;
        self.queue
            .as_ref()
            .ok_or(ServeError::Closed)?
            .send(job)
            .map_err(|_| ServeError::Closed)?;
        Ok((reply_rx, timings))
    }

    fn shutdown_in_place(&mut self) {
        // Dropping the sender ends `recv` with an error once the queue is
        // empty; workers then exit their loops.
        self.queue = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for TopicServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    cell: &SnapshotCell,
    counters: &Counters,
    fold_in: FoldInParams,
    max_batch: usize,
) {
    let mut snapshot = cell.load();
    let mut batch = Vec::with_capacity(max_batch);
    loop {
        // Take one job (blocking), then opportunistically drain more up to
        // the batch cap. Holding the queue lock while blocked parks this
        // worker and lets siblings wake in turn; submissions never take it.
        {
            // Sibling workers never panic while holding this lock (the loop
            // body below catches every per-job hazard), but recover from
            // poison anyway: a wedged queue would strand all requesters.
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            match guard.recv() {
                Ok(job) => batch.push(job),
                Err(_) => return,
            }
            while batch.len() < max_batch {
                match guard.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }

        // One snapshot load per micro-batch: requests in a batch see a
        // consistent model, swaps are picked up at the next batch.
        if cell.load_if_newer(&mut snapshot) {
            counters.swaps_observed.fetch_add(1, Ordering::Relaxed);
        }
        counters.batches.fetch_add(1, Ordering::Relaxed);
        for mut job in batch.drain(..) {
            let dequeued = Instant::now();
            let queue_wait = dequeued.duration_since(job.enqueued);
            // Submission validated against the then-current snapshot; if a
            // swap shrank the vocabulary since, drop the now-unservable ids
            // (reported as OOV) rather than panicking the worker.
            let vocab_size = snapshot.vocab_size() as u32;
            let submitted = job.words.len();
            job.words.retain(|&w| w < vocab_size);
            let n_oov = submitted - job.words.len();

            let reply = match &job.kind {
                JobKind::Infer { seed } => JobReply::Infer(InferResponse {
                    theta: snapshot.infer_topics(&job.words, *seed, fold_in),
                    snapshot_version: snapshot.version(),
                    n_oov,
                }),
                JobKind::PartialFoldIn { seed } => JobReply::Partial(PartialResponse {
                    partial: snapshot.partial_fold_in(&job.words, *seed, fold_in),
                    snapshot_version: snapshot.version(),
                    n_oov,
                    spans: Vec::new(),
                }),
                JobKind::EmRound { theta } => JobReply::Partial(PartialResponse {
                    partial: snapshot.em_round(&job.words, theta),
                    snapshot_version: snapshot.version(),
                    n_oov,
                    spans: Vec::new(),
                }),
            };
            let handler = dequeued.elapsed();
            counters.requests.fetch_add(1, Ordering::Relaxed);
            counters
                .tokens
                .fetch_add(job.words.len() as u64, Ordering::Relaxed);
            counters.queue_wait.record(queue_wait);
            counters.handler.record(handler);
            counters.latency.record_with_exemplar(
                job.enqueued.elapsed(),
                job.trace.trace_id().map_or(0, |id| id.raw()),
            );
            if let Some(timings) = &job.timings {
                timings.queue_wait_us.store(
                    queue_wait.as_micros().min(u128::from(u64::MAX)) as u64,
                    Ordering::Relaxed,
                );
                timings.handler_us.store(
                    handler.as_micros().min(u128::from(u64::MAX)) as u64,
                    Ordering::Relaxed,
                );
            }
            // A send only fails if the requester's receiver is gone (its
            // thread panicked between submit and reply); nothing to do.
            let _ = job.reply.send(reply);
        }
    }
}

impl PartialRequest {
    fn into_kind(self) -> JobKind {
        match self {
            PartialRequest::FoldIn { seed } => JobKind::PartialFoldIn { seed },
            PartialRequest::EmRound { theta, .. } => JobKind::EmRound { theta },
        }
    }
}

/// Workers answer every [`JobKind`] with its matching [`JobReply`] variant,
/// so a mismatch is a serving-crate bug, not a caller error — but a bug in
/// one code path must degrade that request to [`ServeError::Internal`], not
/// kill the calling thread.
fn expect_infer(reply: JobReply) -> Result<InferResponse, ServeError> {
    match reply {
        JobReply::Infer(response) => Ok(response),
        JobReply::Partial(_) => Err(ServeError::Internal {
            detail: "worker answered an infer job with a partial response".to_string(),
        }),
    }
}

/// Builds the self-contained span subtree a shard reports for one traced
/// partial request: an `infer-partial` root with `queue-wait` and `handler`
/// children, ids dense from 1 and offsets relative to the request's
/// admission. Both the in-process [`TopicServer::infer_partial_traced`] and
/// the local transport's wait path use this, so local and remote shards
/// produce identical subtrees for a router to attach.
pub(crate) fn partial_spans(timings: &JobTimings) -> Vec<SpanRecord> {
    let queue_wait_us = timings.queue_wait_us.load(Ordering::Relaxed);
    let handler_us = timings.handler_us.load(Ordering::Relaxed);
    vec![
        SpanRecord {
            id: 1,
            parent: None,
            name: "infer-partial".to_string(),
            start_us: 0,
            duration_us: queue_wait_us + handler_us,
            events: Vec::new(),
        },
        SpanRecord {
            id: 2,
            parent: Some(1),
            name: "queue-wait".to_string(),
            start_us: 0,
            duration_us: queue_wait_us,
            events: Vec::new(),
        },
        SpanRecord {
            id: 3,
            parent: Some(1),
            name: "handler".to_string(),
            start_us: queue_wait_us,
            duration_us: handler_us,
            events: Vec::new(),
        },
    ]
}

pub(crate) fn expect_partial(reply: JobReply) -> Result<PartialResponse, ServeError> {
    match reply {
        JobReply::Partial(response) => Ok(response),
        JobReply::Infer(_) => Err(ServeError::Internal {
            detail: "worker answered a partial job with a full response".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests::planted_model;
    use saber_core::model::LdaModel;

    fn small_server(n_workers: usize) -> TopicServer {
        TopicServer::from_model(
            &planted_model(12, 3),
            ServeConfig {
                n_workers,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_configuration() {
        let snap = InferenceSnapshot::from_model(&planted_model(6, 2), SnapshotSampler::WaryTree);
        let bad = ServeConfig {
            n_workers: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            TopicServer::start(snap, bad),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn serves_single_requests() {
        let server = small_server(2);
        let response = server.infer_topics(vec![0, 3, 6, 9, 0, 3], 42).unwrap();
        assert_eq!(response.dominant_topic(), 0);
        assert_eq!(response.snapshot_version, 1);
        assert_eq!(response.n_oov, 0);
        let sum: f32 = response.theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
        server.shutdown();
    }

    #[test]
    fn batch_answers_preserve_order_and_seeds() {
        let server = small_server(3);
        let requests: Vec<InferRequest> = (0..20)
            .map(|i| InferRequest {
                words: vec![(i % 12) as u32; 6],
                seed: i as u64,
            })
            .collect();
        let a = server.infer_batch(requests.clone()).unwrap();
        let b = server.infer_batch(requests).unwrap();
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.theta, y.theta, "same seed must give same answer");
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 40);
        assert!(stats.batches >= 1);
        assert!(stats.mean_batch_size() >= 1.0);
        assert_eq!(stats.latency.count(), 40, "every request must be timed");
        let (p50, p99) = (stats.latency.p50().unwrap(), stats.latency.p99().unwrap());
        assert!(p50 <= p99);
        server.shutdown();
    }

    #[test]
    fn raw_token_path_reports_oov() {
        let server = small_server(2);
        let vocab = saber_corpus::Vocabulary::synthetic(12);
        let response = server
            .infer_raw(
                &["w00000", "nope", "w00003", "w00006"],
                &vocab,
                OovPolicy::Skip,
                1,
            )
            .unwrap();
        assert_eq!(response.n_oov, 1);
        assert_eq!(response.dominant_topic(), 0);
        assert!(matches!(
            server.infer_raw(&["nope"], &vocab, OovPolicy::Fail, 1),
            Err(ServeError::Corpus(_))
        ));
        server.shutdown();
    }

    #[test]
    fn publish_model_is_visible_to_later_requests() {
        let server = small_server(2);
        assert_eq!(server.snapshot_version(), 1);
        // New model: words planted shifted by one topic.
        let mut model = LdaModel::new(12, 3, 0.05, 0.01).unwrap();
        for v in 0..12 {
            model.word_topic_mut()[(v, (v + 1) % 3)] = 50;
        }
        model.refresh_probabilities();
        let v2 = server.publish_model(&model);
        assert_eq!(v2, 2);
        let response = server.infer_topics(vec![0, 3, 6, 9, 0, 3], 42).unwrap();
        assert_eq!(response.snapshot_version, 2);
        assert_eq!(response.dominant_topic(), 1, "swap must retarget topic");
        server.shutdown();
    }

    #[test]
    fn publish_at_pins_the_epoch_and_rejects_regressions() {
        let server = small_server(1);
        assert_eq!(server.snapshot_version(), 1);
        let snap =
            || InferenceSnapshot::from_model(&planted_model(12, 3), SnapshotSampler::WaryTree);
        assert_eq!(server.publish_at(snap(), 5).unwrap(), 5);
        assert_eq!(server.snapshot_version(), 5);
        let response = server.infer_topics(vec![0, 3], 1).unwrap();
        assert_eq!(response.snapshot_version, 5);
        // Equal or backwards epochs are refused, leaving the server as-is.
        assert!(matches!(
            server.publish_at(snap(), 5),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            server.publish_at(snap(), 2),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert_eq!(server.snapshot_version(), 5);
        // A regular publish continues from the pinned epoch.
        assert_eq!(server.publish(snap()), 6);
        server.shutdown();
    }

    #[test]
    fn out_of_range_word_ids_are_rejected_not_fatal() {
        let server = small_server(2);
        // A poison request must error out without killing a worker…
        match server.infer_topics(vec![0, 99_999], 1) {
            Err(ServeError::BadRequest { detail }) => {
                assert!(detail.contains("99999"), "detail was: {detail}")
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert!(matches!(
            server.try_infer_topics(vec![12], 1),
            Err(ServeError::BadRequest { .. })
        ));
        // …and the pool keeps serving afterwards.
        for seed in 0..8 {
            let response = server.infer_topics(vec![0, 3, 6, 9], seed).unwrap();
            assert_eq!(response.dominant_topic(), 0);
        }
        server.shutdown();
    }

    #[test]
    fn deadline_and_overload_fail_fast_while_worker_is_busy() {
        let server = Arc::new(
            TopicServer::from_model(
                &planted_model(12, 3),
                ServeConfig {
                    n_workers: 1,
                    max_batch: 1,
                    queue_depth: 1,
                    fold_in: FoldInParams {
                        burn_in: 50,
                        samples: 50,
                        ..FoldInParams::default()
                    },
                    ..ServeConfig::default()
                },
            )
            .unwrap(),
        );
        // Park the single worker on a heavy request (10k tokens × 100
        // sweeps), leaving the queue empty but the pool busy.
        let heavy = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.infer_topics(vec![0; 10_000], 1))
        };
        std::thread::sleep(Duration::from_millis(10));
        // Admitted to the (empty) queue but unserved within the deadline.
        assert!(matches!(
            server.infer_with_deadline(vec![0; 10_000], 2, Duration::from_millis(1)),
            Err(ServeError::DeadlineExceeded)
        ));
        // The abandoned job still occupies the depth-1 queue: fail fast.
        assert!(matches!(
            server.infer_with_deadline(vec![3], 3, Duration::from_millis(1)),
            Err(ServeError::Overloaded)
        ));
        assert!(matches!(
            server.try_infer_topics(vec![3], 3),
            Err(ServeError::Overloaded)
        ));
        heavy.join().unwrap().unwrap();
        Arc::try_unwrap(server).unwrap().shutdown();
    }

    #[test]
    fn partial_requests_reproduce_the_full_fold_in() {
        // A single-server "router" with the whole vocabulary: the partial
        // chain plus the esca_theta finish must equal infer_topics exactly.
        let server = small_server(2);
        let words = vec![0u32, 3, 6, 9, 0, 3];
        let full = server.infer_topics(words.clone(), 11).unwrap();
        let partial = server
            .infer_partial(words.clone(), PartialRequest::FoldIn { seed: 11 })
            .unwrap();
        assert_eq!(partial.snapshot_version, 1);
        assert_eq!(partial.n_oov, 0);
        assert_eq!(partial.partial.n_words, words.len());
        let finished: Vec<f32> = saber_core::infer::esca_theta(
            partial.partial.counts,
            partial.partial.n_words,
            server.config().fold_in.samples,
            server.snapshot().alpha(),
        )
        .into_iter()
        .map(|p| p as f32)
        .collect();
        assert_eq!(
            full.theta.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            finished.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );

        // An EM round over a uniform θ reports responsibility counts that
        // sum to the document length (every word's responsibilities sum
        // to 1).
        let theta = Arc::new(vec![1.0f64 / 3.0; 3]);
        let round = server
            .infer_partial(words.clone(), PartialRequest::EmRound { round: 0, theta })
            .unwrap();
        let total: f64 = round.partial.counts.iter().sum();
        assert!((total - words.len() as f64).abs() < 1e-9, "total = {total}");
        // Partial requests share the validation path with full ones.
        assert!(matches!(
            server.infer_partial(vec![99], PartialRequest::FoldIn { seed: 0 }),
            Err(ServeError::BadRequest { .. })
        ));
        server.shutdown();
    }

    #[test]
    fn serve_stats_merge_sums_counters_and_histograms() {
        let a = small_server(1);
        let b = small_server(1);
        for seed in 0..4 {
            a.infer_topics(vec![0, 3, 6], seed).unwrap();
        }
        for seed in 0..3 {
            b.infer_topics(vec![1, 4], seed).unwrap();
        }
        let mut merged = a.stats();
        let b_stats = b.stats();
        merged.merge(&b_stats);
        assert_eq!(merged.requests, 7);
        assert_eq!(merged.tokens, 4 * 3 + 3 * 2);
        assert_eq!(merged.latency.count(), 7);
        // The queue-wait/compute split is recorded for every request and
        // merges alongside the end-to-end histogram.
        assert_eq!(merged.queue_wait.count(), 7);
        assert_eq!(merged.handler.count(), 7);
        assert!(merged.batches >= a.stats().batches.max(b_stats.batches));
        a.shutdown();
        b.shutdown();

        // Fleet-wide events must not multiply by the shard count: swaps
        // merge by max (every shard observes the same publications).
        let mut x = ServeStats {
            requests: 1,
            tokens: 2,
            batches: 1,
            swaps_observed: 2,
            latency: HistogramSnapshot::default(),
            queue_wait: HistogramSnapshot::default(),
            handler: HistogramSnapshot::default(),
        };
        let y = ServeStats {
            swaps_observed: 3,
            ..x.clone()
        };
        x.merge(&y);
        assert_eq!(x.swaps_observed, 3, "swaps merge by max, not sum");
        assert_eq!(x.requests, 2, "throughput counters still sum");
    }

    #[test]
    fn traced_requests_report_queue_and_handler_spans() {
        let server = small_server(1);
        let id = saber_trace::TraceId::mint();
        let mut trace = TraceBuilder::new(id);
        let root = trace.begin(None, "test-root");
        let traced = server
            .infer_traced(vec![0, 3, 6], 7, Duration::from_secs(5), &mut trace, root)
            .unwrap();
        // Tracing is invisible to the answer itself.
        let untraced = server.infer_topics(vec![0, 3, 6], 7).unwrap();
        assert_eq!(
            traced.theta.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            untraced
                .theta
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
        );
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"queue-wait"), "spans were: {names:?}");
        assert!(names.contains(&"handler"), "spans were: {names:?}");

        // The partial path reports a self-contained subtree in the response
        // (what a remote shard ships inline for the router to attach)…
        let partial = server
            .infer_partial_traced(
                vec![0, 3],
                PartialRequest::FoldIn { seed: 1 },
                Duration::from_secs(5),
                TraceContext::root(id),
            )
            .unwrap();
        assert_eq!(partial.spans.len(), 3);
        assert_eq!(partial.spans[0].name, "infer-partial");
        assert_eq!(partial.spans[0].parent, None);
        assert_eq!(partial.spans[1].parent, Some(1));
        // …while untraced partials carry no spans at all, keeping the wire
        // encoding of existing deployments byte-identical.
        let untraced_partial = server
            .infer_partial(vec![0, 3], PartialRequest::FoldIn { seed: 1 })
            .unwrap();
        assert!(untraced_partial.spans.is_empty());
        server.shutdown();
    }

    #[test]
    fn empty_document_gets_uniform_theta() {
        let server = small_server(1);
        let response = server.infer_topics(vec![], 0).unwrap();
        for &t in &response.theta {
            assert!((t - 1.0 / 3.0).abs() < 1e-6);
        }
        server.shutdown();
    }

    #[test]
    fn drop_joins_workers() {
        let server = small_server(4);
        let _ = server.infer_topics(vec![1, 4, 7], 3).unwrap();
        drop(server); // must not hang or panic
    }
}
