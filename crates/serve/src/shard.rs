//! Vocabulary shard planning: how a model too big for one worker pool is
//! split across several.
//!
//! The paper's central move (§3.1) is partitioning LDA state so each piece
//! streams through a bounded memory budget; [`ShardPlan`] applies the same
//! idea to serving. The vocabulary `0..V` is cut into contiguous word-id
//! ranges sized by the core memory estimator
//! ([`saber_core::memory::snapshot_bytes`]), each range becomes an
//! [`InferenceSnapshot::shard`](crate::InferenceSnapshot::shard) served by
//! its own [`TopicServer`](crate::TopicServer), and a
//! [`ShardRouter`](crate::ShardRouter) splits documents across them.
//!
//! A plan is pure data with three invariants the property tests pin down:
//! ranges are **disjoint**, **cover** `0..V` exactly, and (for
//! [`ShardPlan::by_budget`]) each range's snapshot **fits the byte
//! budget**.

use std::ops::Range;

use saber_core::memory::snapshot_bytes;

use crate::snapshot::SnapshotSampler;
use crate::ServeError;

/// Derives the RNG seed shard `shard` uses for a request-level `seed`.
///
/// Shard 0 keeps the raw request seed, so a single-shard router replays a
/// direct [`TopicServer`](crate::TopicServer) bit-for-bit; later shards get
/// decorrelated streams via a golden-ratio multiply (the SplitMix64
/// increment constant). Deterministic, so sharded answers replay exactly
/// like unsharded ones.
pub fn derive_shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Derives which of `n_replicas` serves shard `shard` for a request-level
/// `seed` — the seed-deterministic replica selector behind replicated plan
/// ranges. Replicas of a shard serve identical snapshot slices with
/// identical shard-derived seeds, so the *answer* never depends on the
/// choice; determinism here is about making request → replica routing
/// replayable (and spreading load evenly, via a SplitMix64-style mix of
/// the already-derived shard seed).
pub fn derive_replica_choice(seed: u64, shard: usize, n_replicas: usize) -> usize {
    if n_replicas <= 1 {
        return 0;
    }
    let mut mixed = derive_shard_seed(seed, shard);
    mixed ^= mixed >> 30;
    mixed = mixed.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    mixed ^= mixed >> 27;
    (mixed % n_replicas as u64) as usize
}

/// A partition of the vocabulary `0..V` into contiguous word-id ranges,
/// one per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Ascending cut points: shard `s` owns `bounds[s]..bounds[s + 1]`.
    /// `bounds[0] == 0`, `bounds.last() == V`, strictly increasing — which
    /// is exactly "disjoint and covering".
    bounds: Vec<u32>,
}

impl ShardPlan {
    /// A single shard owning the whole vocabulary — the degenerate plan a
    /// router uses to serve un-split models through the same code path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `vocab_size` is 0.
    pub fn single(vocab_size: usize) -> Result<Self, ServeError> {
        ShardPlan::uniform(vocab_size, 1)
    }

    /// Splits `0..vocab_size` into `n_shards` contiguous ranges of
    /// near-equal length (the first `vocab_size % n_shards` ranges are one
    /// word longer).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `vocab_size` is 0,
    /// `n_shards` is 0, or there are more shards than words (an empty
    /// shard serves nothing and can only hide bugs).
    pub fn uniform(vocab_size: usize, n_shards: usize) -> Result<Self, ServeError> {
        if vocab_size == 0 || n_shards == 0 || n_shards > vocab_size {
            return Err(ServeError::InvalidConfig {
                detail: format!(
                    "cannot split a vocabulary of {vocab_size} words into {n_shards} \
                     non-empty shards"
                ),
            });
        }
        let base = vocab_size / n_shards;
        let extra = vocab_size % n_shards;
        let mut bounds = Vec::with_capacity(n_shards + 1);
        let mut at = 0usize;
        bounds.push(0);
        for s in 0..n_shards {
            at += base + usize::from(s < extra);
            bounds.push(at as u32);
        }
        Ok(ShardPlan { bounds })
    }

    /// Cuts the vocabulary into the fewest contiguous shards whose
    /// per-shard snapshot footprint — `B̂` rows plus the pre-processed
    /// per-word structures, as estimated by [`snapshot_bytes`] — stays
    /// within `max_shard_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `vocab_size` or
    /// `n_topics` is 0, or when the budget cannot hold even a single
    /// word's rows.
    pub fn by_budget(
        vocab_size: usize,
        n_topics: usize,
        sampler: SnapshotSampler,
        max_shard_bytes: u64,
    ) -> Result<Self, ServeError> {
        if vocab_size == 0 || n_topics == 0 {
            return Err(ServeError::InvalidConfig {
                detail: "vocab_size and n_topics must be at least 1".into(),
            });
        }
        // The estimator is linear in V, so the budget translates to a
        // per-shard word capacity.
        let per_word = snapshot_bytes(1, n_topics, sampler.preprocess());
        let capacity = (max_shard_bytes / per_word) as usize;
        if capacity == 0 {
            return Err(ServeError::InvalidConfig {
                detail: format!(
                    "budget of {max_shard_bytes} bytes cannot hold one word's {per_word} \
                     bytes at K = {n_topics}"
                ),
            });
        }
        let n_shards = vocab_size.div_ceil(capacity);
        ShardPlan::uniform(vocab_size, n_shards)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Vocabulary size `V` the plan covers.
    pub fn vocab_size(&self) -> usize {
        // `bounds` always holds `n_shards + 1 ≥ 1` entries (every
        // constructor pushes bound 0 first); an empty plan covers V = 0.
        self.bounds.last().copied().unwrap_or(0) as usize
    }

    /// The word-id range shard `s` owns.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards`.
    pub fn range(&self, s: usize) -> Range<u32> {
        assert!(s < self.n_shards(), "shard {s} out of range");
        self.bounds[s]..self.bounds[s + 1]
    }

    /// All shard ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<u32>> + '_ {
        (0..self.n_shards()).map(|s| self.range(s))
    }

    /// The wire-visible trace span name for shard `s`'s fan-out leg —
    /// the name [`ShardRouter`](crate::ShardRouter) gives the span that
    /// wraps shard `s`'s submit/collect round trip, and the name clients
    /// of `GET /trace/recent` key on (see `docs/OBSERVABILITY.md`).
    /// Defined next to the plan so the span taxonomy and the partition it
    /// describes stay in one place.
    #[must_use]
    pub fn span_name(s: usize) -> String {
        format!("shard {s}")
    }

    /// The shard owning `word`, or `None` when `word >= V`.
    pub fn shard_of(&self, word: u32) -> Option<usize> {
        if (word as usize) >= self.vocab_size() {
            return None;
        }
        // partition_point: first bound > word, minus the leading 0 bound.
        Some(self.bounds.partition_point(|&b| b <= word) - 1)
    }

    /// Splits a document into per-shard word lists with ids re-based to
    /// each shard's range (`global - range.start`), preserving document
    /// order within each shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when a word id is outside the
    /// vocabulary — the router-level analogue of
    /// [`TopicServer`](crate::TopicServer)'s admission check.
    pub fn split(&self, words: &[u32]) -> Result<Vec<Vec<u32>>, ServeError> {
        let mut per_shard = vec![Vec::new(); self.n_shards()];
        for &w in words {
            let Some(s) = self.shard_of(w) else {
                return Err(ServeError::BadRequest {
                    detail: format!(
                        "word id {w} out of vocabulary range (V = {})",
                        self.vocab_size()
                    ),
                });
            };
            per_shard[s].push(w - self.bounds[s]);
        }
        Ok(per_shard)
    }

    /// Estimated snapshot footprint of shard `s` in bytes, via
    /// [`snapshot_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards`.
    pub fn shard_bytes(&self, s: usize, n_topics: usize, sampler: SnapshotSampler) -> u64 {
        let range = self.range(s);
        snapshot_bytes(
            (range.end - range.start) as u64,
            n_topics,
            sampler.preprocess(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_covers_the_vocabulary_without_gaps() {
        let plan = ShardPlan::uniform(10, 3).unwrap();
        assert_eq!(plan.n_shards(), 3);
        assert_eq!(plan.vocab_size(), 10);
        let ranges: Vec<_> = plan.ranges().collect();
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        assert_eq!(plan.shard_of(0), Some(0));
        assert_eq!(plan.shard_of(3), Some(0));
        assert_eq!(plan.shard_of(4), Some(1));
        assert_eq!(plan.shard_of(9), Some(2));
        assert_eq!(plan.shard_of(10), None);
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        assert!(matches!(
            ShardPlan::uniform(0, 1),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ShardPlan::uniform(4, 0),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ShardPlan::uniform(4, 5),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ShardPlan::by_budget(100, 64, SnapshotSampler::WaryTree, 16),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn split_rebases_word_ids_and_preserves_order() {
        let plan = ShardPlan::uniform(12, 3).unwrap();
        let split = plan.split(&[0, 5, 11, 1, 6, 0, 8]).unwrap();
        assert_eq!(split[0], vec![0, 1, 0]);
        assert_eq!(split[1], vec![1, 2]);
        assert_eq!(split[2], vec![3, 0]);
        assert!(matches!(
            plan.split(&[12]),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn derive_shard_seed_keeps_shard_zero_raw() {
        assert_eq!(derive_shard_seed(1234, 0), 1234);
        let derived: Vec<u64> = (0..8).map(|s| derive_shard_seed(1234, s)).collect();
        let mut unique = derived.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), derived.len(), "shard seeds must differ");
    }

    #[test]
    fn derive_replica_choice_is_deterministic_and_in_range() {
        for n in 1..5usize {
            for seed in [0u64, 1, 42, u64::MAX] {
                for shard in 0..4 {
                    let choice = derive_replica_choice(seed, shard, n);
                    assert!(choice < n);
                    assert_eq!(choice, derive_replica_choice(seed, shard, n));
                }
            }
        }
        // The selector actually spreads: across many seeds every replica of
        // a 3-replica set sees traffic.
        let mut hit = [false; 3];
        for seed in 0..64u64 {
            hit[derive_replica_choice(seed, 1, 3)] = true;
        }
        assert_eq!(hit, [true; 3]);
    }

    #[test]
    fn by_budget_matches_manual_arithmetic() {
        // 1000 words at K = 64 with alias tables: 64·4 B̂ + 64·8 alias
        // = 768 bytes/word; a 100 kB budget holds 130 words → 8 shards.
        let plan = ShardPlan::by_budget(1000, 64, SnapshotSampler::AliasTable, 100_000).unwrap();
        assert_eq!(plan.n_shards(), 8);
        for s in 0..plan.n_shards() {
            assert!(plan.shard_bytes(s, 64, SnapshotSampler::AliasTable) <= 100_000);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Uniform plans partition 0..V: disjoint, covering, every word
        /// owned by exactly the shard whose range contains it.
        #[test]
        fn plans_partition_the_vocabulary(
            vocab in 1usize..5000,
            shards in 1usize..64,
        ) {
            let shards = shards.min(vocab);
            let plan = ShardPlan::uniform(vocab, shards).unwrap();
            prop_assert_eq!(plan.n_shards(), shards);
            prop_assert_eq!(plan.vocab_size(), vocab);
            // Contiguity + coverage: ranges chain from 0 to V.
            let mut expected_start = 0u32;
            for range in plan.ranges() {
                prop_assert_eq!(range.start, expected_start);
                prop_assert!(range.start < range.end, "empty shard");
                expected_start = range.end;
            }
            prop_assert_eq!(expected_start as usize, vocab);
            // Balance: uniform ranges differ by at most one word.
            let lens: Vec<u32> = plan.ranges().map(|r| r.end - r.start).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            prop_assert!(max - min <= 1);
            // Membership agrees with the ranges.
            for probe in [0u32, (vocab as u32 - 1) / 2, vocab as u32 - 1] {
                let s = plan.shard_of(probe).unwrap();
                prop_assert!(plan.range(s).contains(&probe));
            }
            prop_assert_eq!(plan.shard_of(vocab as u32), None);
        }

        /// Budgeted plans respect the byte budget on every shard and use a
        /// minimal shard count (one fewer shard would overflow somewhere).
        #[test]
        fn budgeted_plans_respect_the_budget(
            vocab in 1usize..3000,
            k in 1usize..256,
            budget_words in 1u64..500,
        ) {
            let sampler = SnapshotSampler::WaryTree;
            let per_word = snapshot_bytes(1, k, sampler.preprocess());
            let budget = per_word * budget_words;
            let plan = ShardPlan::by_budget(vocab, k, sampler, budget).unwrap();
            for s in 0..plan.n_shards() {
                prop_assert!(
                    plan.shard_bytes(s, k, sampler) <= budget,
                    "shard {} of {} exceeds the budget", s, plan.n_shards()
                );
            }
            if plan.n_shards() > 1 {
                // Minimality: the same vocabulary in one fewer shard would
                // put > capacity words somewhere.
                let fewer = ShardPlan::uniform(vocab, plan.n_shards() - 1).unwrap();
                let widest = fewer.ranges().map(|r| r.end - r.start).max().unwrap();
                prop_assert!(
                    u64::from(widest) * per_word > budget,
                    "plan used more shards than the budget requires"
                );
            }
        }

        /// Splitting a document never loses or invents words, and local
        /// ids stay within their shard's width.
        #[test]
        fn split_is_lossless(
            vocab in 1usize..2000,
            shards in 1usize..16,
            words in proptest::collection::vec(0u32..2000, 0..64),
        ) {
            let shards = shards.min(vocab);
            let plan = ShardPlan::uniform(vocab, shards).unwrap();
            let words: Vec<u32> = words.into_iter().filter(|&w| (w as usize) < vocab).collect();
            let split = plan.split(&words).unwrap();
            let total: usize = split.iter().map(Vec::len).sum();
            prop_assert_eq!(total, words.len());
            let mut reassembled: Vec<u32> = Vec::new();
            for (s, local_words) in split.iter().enumerate() {
                let range = plan.range(s);
                for &local in local_words {
                    prop_assert!(local < range.end - range.start);
                    reassembled.push(local + range.start);
                }
            }
            reassembled.sort_unstable();
            let mut sorted = words.clone();
            sorted.sort_unstable();
            prop_assert_eq!(reassembled, sorted);
        }
    }
}
