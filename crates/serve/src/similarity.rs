//! Document similarity in topic space.
//!
//! Once documents are reduced to topic distributions `θ`, similarity search
//! is distance computation between points on the probability simplex. Two
//! standard measures are provided: Hellinger distance (a proper metric on
//! distributions, the usual choice for LDA embeddings) and cosine
//! similarity (cheap, scale-insensitive).

/// Hellinger distance between two topic distributions, in `[0, 1]`
/// (0 = identical, 1 = disjoint support).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hellinger_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "topic distributions differ in length");
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = (x.max(0.0) as f64).sqrt() - (y.max(0.0) as f64).sqrt();
            d * d
        })
        .sum();
    ((sum / 2.0).sqrt() as f32).min(1.0)
}

/// Cosine similarity between two topic distributions, in `[0, 1]` for
/// non-negative inputs (1 = same direction). Returns 0 when either vector
/// is all-zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "topic distributions differ in length");
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())) as f32
    }
}

/// Index and Hellinger distance of the candidate closest to `query`, or
/// `None` when `candidates` is empty.
pub fn most_similar(query: &[f32], candidates: &[Vec<f32>]) -> Option<(usize, f32)> {
    candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i, hellinger_distance(query, c)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hellinger_basics() {
        let a = [1.0f32, 0.0, 0.0];
        let b = [0.0f32, 1.0, 0.0];
        assert_eq!(hellinger_distance(&a, &a), 0.0);
        assert!((hellinger_distance(&a, &b) - 1.0).abs() < 1e-6);
        let c = [0.5f32, 0.5, 0.0];
        let d = hellinger_distance(&a, &c);
        assert!(d > 0.0 && d < 1.0);
        // Symmetry.
        assert_eq!(d, hellinger_distance(&c, &a));
    }

    #[test]
    fn cosine_basics() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert_eq!(cosine_similarity(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn most_similar_picks_the_closest() {
        let query = vec![0.9f32, 0.1];
        let candidates = vec![vec![0.1f32, 0.9], vec![0.8f32, 0.2], vec![0.5f32, 0.5]];
        let (idx, dist) = most_similar(&query, &candidates).unwrap();
        assert_eq!(idx, 1);
        assert!(dist < 0.2);
        assert!(most_similar(&query, &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn mismatched_lengths_panic() {
        hellinger_distance(&[0.5, 0.5], &[1.0]);
    }
}
