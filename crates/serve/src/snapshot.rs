//! Immutable inference snapshots exported from a trained [`LdaModel`].
//!
//! A snapshot is everything inference needs and nothing the trainer can
//! touch afterwards: the normalised topic–word matrix `B̂` plus one
//! pre-processed per-word sampling structure ([`SnapshotSampler`] picks the
//! W-ary tree / alias table trade-off of the paper's §3.2.4). Being plain
//! immutable data, snapshots are shared behind `Arc` across worker threads
//! and publications ([`crate::SnapshotCell`]) without synchronisation on
//! the read path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saber_core::config::PreprocessKind;
use saber_core::infer::fold_in_esca;
use saber_core::memory::snapshot_bytes;
use saber_core::model::LdaModel;
use saber_core::trees::WordSampler;
use saber_sparse::DenseMatrix;

/// Which pre-processed per-word structure a snapshot builds for the dense
/// sub-problem `p₂(k) ∝ B̂_vk`.
///
/// Serving exposes the same trade-off the paper studies for training
/// (§3.2.4): the W-ary tree is cheap to build (snapshots are rebuilt on
/// every publish) while the alias table answers queries in `O(1)`. Fenwick
/// trees lose on both axes, so serving does not offer them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SnapshotSampler {
    /// The paper's 32-ary sampling tree: `O(K)` build, `O(log₃₂ K)` query.
    #[default]
    WaryTree,
    /// Walker's alias table: sequential `O(K)` build with a larger constant,
    /// `O(1)` query — worth it for long-lived snapshots under heavy load.
    AliasTable,
}

impl SnapshotSampler {
    /// The corresponding training-side configuration value.
    pub fn preprocess(self) -> PreprocessKind {
        match self {
            SnapshotSampler::WaryTree => PreprocessKind::WaryTree,
            SnapshotSampler::AliasTable => PreprocessKind::AliasTable,
        }
    }
}

/// Fold-in quality knobs for serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldInParams {
    /// Gibbs sweeps discarded before measuring.
    pub burn_in: usize,
    /// Gibbs sweeps averaged into the returned `θ`.
    pub samples: usize,
}

impl Default for FoldInParams {
    fn default() -> Self {
        FoldInParams {
            burn_in: 5,
            samples: 8,
        }
    }
}

/// An immutable, self-contained view of a trained model, ready to serve
/// topic inference: the normalised `B̂` plus one pre-processed sampling
/// structure per word.
///
/// Snapshots are plain data — cheap to share behind an [`std::sync::Arc`],
/// never mutated after construction, and independent of the trainer that
/// produced them, so training can continue (or the model be dropped) while
/// requests are in flight.
#[derive(Debug, Clone)]
pub struct InferenceSnapshot {
    bhat: DenseMatrix<f32>,
    samplers: Vec<WordSampler>,
    alpha: f32,
    sampler_kind: SnapshotSampler,
    version: u64,
}

impl InferenceSnapshot {
    /// Exports a snapshot from `model`, building one `kind` structure per
    /// vocabulary word from the current `B̂`.
    ///
    /// The model's probabilities must be fresh (the trainer refreshes them
    /// every iteration; call [`LdaModel::refresh_probabilities`] after manual
    /// count edits).
    pub fn from_model(model: &LdaModel, kind: SnapshotSampler) -> Self {
        let bhat = model.snapshot_probabilities();
        let samplers = (0..bhat.rows())
            .map(|v| WordSampler::build(kind.preprocess(), bhat.row(v)))
            .collect();
        InferenceSnapshot {
            bhat,
            samplers,
            alpha: model.alpha(),
            sampler_kind: kind,
            version: 0,
        }
    }

    /// Number of topics `K`.
    pub fn n_topics(&self) -> usize {
        self.bhat.cols()
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.bhat.rows()
    }

    /// Document–topic smoothing α inherited from the model.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// The sampling structure this snapshot was built with.
    pub fn sampler_kind(&self) -> SnapshotSampler {
        self.sampler_kind
    }

    /// Publication version, assigned by [`crate::SnapshotCell::publish`];
    /// 0 until the snapshot has been published.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Estimated resident footprint in bytes, via the core memory estimator
    /// ([`snapshot_bytes`]).
    pub fn memory_bytes(&self) -> u64 {
        snapshot_bytes(
            self.vocab_size() as u64,
            self.n_topics(),
            self.sampler_kind.preprocess(),
        )
    }

    /// Infers the topic distribution `θ` of an unseen document by
    /// sparsity-aware ESCA fold-in (`O(K_d)` per token; see
    /// [`saber_core::infer`]).
    ///
    /// Deterministic: equal `(words, seed, snapshot contents, params)` give
    /// bit-identical results, independent of batching or the worker thread
    /// that runs them.
    ///
    /// # Panics
    ///
    /// Panics if a word id is out of vocabulary range.
    pub fn infer_topics(&self, words: &[u32], seed: u64, params: FoldInParams) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        fold_in_esca(
            words,
            &self.bhat,
            &self.samplers,
            self.alpha,
            params.burn_in,
            params.samples,
            &mut rng,
        )
        .into_iter()
        .map(|p| p as f32)
        .collect()
    }

    /// The `n` highest-probability words of topic `k`, as `(word id,
    /// probability)` pairs in decreasing order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_topics`.
    pub fn top_words(&self, k: usize, n: usize) -> Vec<(u32, f32)> {
        assert!(k < self.n_topics(), "topic {k} out of range");
        saber_core::model::top_words_of_column(&self.bhat, k, n)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn planted_model(vocab: usize, k: usize) -> LdaModel {
        let mut model = LdaModel::new(vocab, k, 0.05, 0.01).unwrap();
        for v in 0..vocab {
            model.word_topic_mut()[(v, v % k)] = 50;
        }
        model.refresh_probabilities();
        model
    }

    #[test]
    fn snapshot_reflects_model_dimensions() {
        let model = planted_model(12, 3);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        assert_eq!(snap.n_topics(), 3);
        assert_eq!(snap.vocab_size(), 12);
        assert_eq!(snap.alpha(), 0.05);
        assert_eq!(snap.version(), 0);
        assert!(snap.memory_bytes() > (12 * 3 * 4) as u64);
    }

    #[test]
    fn infer_recovers_planted_topic_for_both_sampler_kinds() {
        let model = planted_model(12, 3);
        for kind in [SnapshotSampler::WaryTree, SnapshotSampler::AliasTable] {
            let snap = InferenceSnapshot::from_model(&model, kind);
            let theta = snap.infer_topics(&[2, 5, 8, 11, 2, 5], 7, FoldInParams::default());
            let argmax = theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(argmax, 2, "{kind:?}: theta = {theta:?}");
        }
    }

    #[test]
    fn infer_is_bit_identical_for_equal_seeds() {
        let model = planted_model(20, 4);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let words = [1u32, 5, 9, 13, 17, 1];
        let a = snap.infer_topics(&words, 99, FoldInParams::default());
        let b = snap.infer_topics(&words, 99, FoldInParams::default());
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // A soft model (every word shared between two topics) exposes
        // seed-dependent sampling noise; the planted one pins every token
        // and converges identically for any seed.
        let mut soft = LdaModel::new(20, 4, 0.5, 0.01).unwrap();
        for v in 0..20 {
            soft.word_topic_mut()[(v, v % 4)] = 3;
            soft.word_topic_mut()[(v, (v + 1) % 4)] = 2;
        }
        soft.refresh_probabilities();
        let soft_snap = InferenceSnapshot::from_model(&soft, SnapshotSampler::WaryTree);
        let mixed = [1u32, 2, 5, 9, 6, 3, 0, 7];
        let c = soft_snap.infer_topics(&mixed, 100, FoldInParams::default());
        let d = soft_snap.infer_topics(&mixed, 101, FoldInParams::default());
        assert_ne!(c, d);
    }

    #[test]
    fn top_words_follow_planted_structure() {
        let model = planted_model(12, 3);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let top = snap.top_words(1, 4);
        assert_eq!(top.len(), 4);
        for (word, _) in top {
            assert_eq!(word % 3, 1, "word {word} not planted in topic 1");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn top_words_rejects_bad_topic() {
        let model = planted_model(6, 2);
        InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree).top_words(2, 1);
    }
}
