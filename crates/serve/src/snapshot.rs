//! Immutable inference snapshots exported from a trained [`LdaModel`].
//!
//! A snapshot is everything inference needs and nothing the trainer can
//! touch afterwards: the normalised topic–word matrix `B̂` plus one
//! pre-processed per-word sampling structure ([`SnapshotSampler`] picks the
//! W-ary tree / alias table trade-off of the paper's §3.2.4). Being plain
//! immutable data, snapshots are shared behind `Arc` across worker threads
//! and publications ([`crate::SnapshotCell`]) without synchronisation on
//! the read path.

use std::io::{Read, Write};
use std::ops::Range;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;
use saber_core::config::PreprocessKind;
use saber_core::infer::{
    em_accumulate, fold_in_em, fold_in_esca, fold_in_esca_partial, PartialFoldIn,
};
use saber_core::memory::snapshot_bytes;
use saber_core::model::LdaModel;
use saber_core::model_io;
use saber_core::trees::WordSampler;
use saber_core::SaberError;
use saber_sparse::DenseMatrix;

/// Which pre-processed per-word structure a snapshot builds for the dense
/// sub-problem `p₂(k) ∝ B̂_vk`.
///
/// Serving exposes the same trade-off the paper studies for training
/// (§3.2.4): the W-ary tree is cheap to build (snapshots are rebuilt on
/// every publish) while the alias table answers queries in `O(1)`. Fenwick
/// trees lose on both axes, so serving does not offer them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SnapshotSampler {
    /// The paper's 32-ary sampling tree: `O(K)` build, `O(log₃₂ K)` query.
    #[default]
    WaryTree,
    /// Walker's alias table: sequential `O(K)` build with a larger constant,
    /// `O(1)` query — worth it for long-lived snapshots under heavy load.
    AliasTable,
}

impl SnapshotSampler {
    /// The corresponding training-side configuration value.
    pub fn preprocess(self) -> PreprocessKind {
        match self {
            SnapshotSampler::WaryTree => PreprocessKind::WaryTree,
            SnapshotSampler::AliasTable => PreprocessKind::AliasTable,
        }
    }

    /// The on-disk/wire discriminant used by [`InferenceSnapshot::save`].
    fn code(self) -> u8 {
        match self {
            SnapshotSampler::WaryTree => 0,
            SnapshotSampler::AliasTable => 1,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(SnapshotSampler::WaryTree),
            1 => Some(SnapshotSampler::AliasTable),
            _ => None,
        }
    }
}

/// Which fold-in estimator serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FoldInKind {
    /// Sparsity-aware collapsed Gibbs (`O(K_d)` per token) — the fast
    /// default. Seeded, so equal seeds replay bit-identically; under a
    /// sharded router the per-shard chains are independent, making the
    /// merged θ a (statistically consistent) approximation of the
    /// unsharded one.
    #[default]
    Esca,
    /// Deterministic soft-EM fold-in (`O(K)` per token per iteration; see
    /// [`saber_core::infer::fold_in_em`]). Seed-independent, and — because
    /// each iteration's sufficient statistic is a sum over words — a
    /// sharded router reproduces the unsharded answer *exactly* (up to
    /// floating-point summation order). This is the mode the differential
    /// test suite pins to 1e-5 L∞ across shard counts.
    Em,
}

/// Fold-in quality knobs for serving.
///
/// `burn_in` and `samples` are Gibbs-sweep counts under
/// [`FoldInKind::Esca`]; under [`FoldInKind::Em`] their sum is the EM
/// iteration count (EM has no burn-in, the whole budget refines θ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldInParams {
    /// Gibbs sweeps discarded before measuring.
    pub burn_in: usize,
    /// Gibbs sweeps averaged into the returned `θ`.
    pub samples: usize,
    /// Which estimator runs.
    pub kind: FoldInKind,
}

impl FoldInParams {
    /// Total sweep/iteration budget (`burn_in + samples`).
    pub fn total_sweeps(&self) -> usize {
        self.burn_in + self.samples
    }
}

impl Default for FoldInParams {
    fn default() -> Self {
        FoldInParams {
            burn_in: 5,
            samples: 8,
            kind: FoldInKind::Esca,
        }
    }
}

/// An immutable, self-contained view of a trained model, ready to serve
/// topic inference: the normalised `B̂` plus one pre-processed sampling
/// structure per word.
///
/// Snapshots are plain data — cheap to share behind an [`std::sync::Arc`],
/// never mutated after construction, and independent of the trainer that
/// produced them, so training can continue (or the model be dropped) while
/// requests are in flight.
#[derive(Debug, Clone)]
pub struct InferenceSnapshot {
    bhat: DenseMatrix<f32>,
    samplers: Vec<WordSampler>,
    alpha: f32,
    sampler_kind: SnapshotSampler,
    version: u64,
}

impl InferenceSnapshot {
    /// Exports a snapshot from `model`, building one `kind` structure per
    /// vocabulary word from the current `B̂`.
    ///
    /// The model's probabilities must be fresh (the trainer refreshes them
    /// every iteration; call [`LdaModel::refresh_probabilities`] after manual
    /// count edits).
    pub fn from_model(model: &LdaModel, kind: SnapshotSampler) -> Self {
        let bhat = model.snapshot_probabilities();
        let samplers = (0..bhat.rows())
            .map(|v| WordSampler::build(kind.preprocess(), bhat.row(v)))
            .collect();
        InferenceSnapshot {
            bhat,
            samplers,
            alpha: model.alpha(),
            sampler_kind: kind,
            version: 0,
        }
    }

    /// Number of topics `K`.
    pub fn n_topics(&self) -> usize {
        self.bhat.cols()
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.bhat.rows()
    }

    /// Document–topic smoothing α inherited from the model.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// The sampling structure this snapshot was built with.
    pub fn sampler_kind(&self) -> SnapshotSampler {
        self.sampler_kind
    }

    /// Publication version, assigned by [`crate::SnapshotCell::publish`];
    /// 0 until the snapshot has been published.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Estimated resident footprint in bytes, via the core memory estimator
    /// ([`snapshot_bytes`]).
    pub fn memory_bytes(&self) -> u64 {
        snapshot_bytes(
            self.vocab_size() as u64,
            self.n_topics(),
            self.sampler_kind.preprocess(),
        )
    }

    /// Infers the topic distribution `θ` of an unseen document by
    /// sparsity-aware ESCA fold-in (`O(K_d)` per token; see
    /// [`saber_core::infer`]).
    ///
    /// Deterministic: equal `(words, seed, snapshot contents, params)` give
    /// bit-identical results, independent of batching or the worker thread
    /// that runs them.
    ///
    /// # Panics
    ///
    /// Panics if a word id is out of vocabulary range.
    pub fn infer_topics(&self, words: &[u32], seed: u64, params: FoldInParams) -> Vec<f32> {
        match params.kind {
            FoldInKind::Esca => {
                let mut rng = StdRng::seed_from_u64(seed);
                fold_in_esca(
                    words,
                    &self.bhat,
                    &self.samplers,
                    self.alpha,
                    params.burn_in,
                    params.samples,
                    &mut rng,
                )
            }
            FoldInKind::Em => fold_in_em(words, &self.bhat, self.alpha, params.total_sweeps()),
        }
        .into_iter()
        .map(|p| p as f32)
        .collect()
    }

    /// The chain half of an ESCA fold-in over a word subset: raw measured
    /// counts, not θ. A sharded router merges these across shards and
    /// finishes with [`saber_core::infer::esca_theta`]; with the full word
    /// list this is exactly the computation inside
    /// [`InferenceSnapshot::infer_topics`].
    ///
    /// # Panics
    ///
    /// Panics if a word id is out of vocabulary range.
    pub fn partial_fold_in(&self, words: &[u32], seed: u64, params: FoldInParams) -> PartialFoldIn {
        let mut rng = StdRng::seed_from_u64(seed);
        fold_in_esca_partial(
            words,
            &self.bhat,
            &self.samplers,
            self.alpha,
            params.burn_in,
            params.samples,
            &mut rng,
        )
    }

    /// One EM fold-in round over a word subset: the responsibility-count
    /// partial for the current `theta`. Deterministic, and exactly additive
    /// across disjoint word subsets (see [`saber_core::infer::em_accumulate`]).
    ///
    /// # Panics
    ///
    /// Panics if a word id is out of vocabulary range or `theta` is shorter
    /// than `K`.
    pub fn em_round(&self, words: &[u32], theta: &[f64]) -> PartialFoldIn {
        let mut partial = PartialFoldIn::empty(self.n_topics());
        em_accumulate(words, &self.bhat, theta, &mut partial.counts);
        partial.n_words = words.len();
        partial
    }

    /// Slices the snapshot down to the contiguous word-id range `range`:
    /// the `B̂` rows and per-word samplers of those words, with word ids
    /// re-based to `0..range.len()`. Per-row data is copied bit-for-bit, so
    /// a shard answers its words' likelihood terms exactly as the full
    /// snapshot would.
    ///
    /// The slice keeps `alpha`, the sampler kind and `K`; its version is
    /// reset to 0 (unpublished).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty, reversed or out of vocabulary bounds.
    pub fn shard(&self, range: Range<u32>) -> InferenceSnapshot {
        assert!(
            range.start < range.end && (range.end as usize) <= self.vocab_size(),
            "shard range {range:?} invalid for V = {}",
            self.vocab_size()
        );
        let (start, end) = (range.start as usize, range.end as usize);
        let k = self.n_topics();
        let data = self.bhat.as_slice()[start * k..end * k].to_vec();
        let bhat = DenseMatrix::from_vec(end - start, k, data)
            // saber-lint: allow(no-panic-serving) the assert above pins the
            // dims; shard() runs at publish time, never on a request thread
            .expect("shard slice dimensions are consistent by construction");
        InferenceSnapshot {
            bhat,
            samplers: self.samplers[start..end].to_vec(),
            alpha: self.alpha,
            sampler_kind: self.sampler_kind,
            version: 0,
        }
    }

    /// Builds the `SABRDELTA` payload that upgrades this snapshot's
    /// `range` shard from `base_version` to `target_version`: the `B̂` rows
    /// of every changed word falling inside `range`, re-based to shard-local
    /// ids, copied bit-for-bit from the full snapshot. `changed_rows` must
    /// be sorted ascending and deduplicated (as
    /// `SaberLda::take_touched_rows` returns them) so the payload is
    /// canonical for [`saber_core::model_io::save_delta`].
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty, reversed or out of vocabulary bounds.
    pub fn shard_delta(
        &self,
        range: Range<u32>,
        changed_rows: &[u32],
        base_version: u64,
        target_version: u64,
    ) -> model_io::DeltaPayload {
        assert!(
            range.start < range.end && (range.end as usize) <= self.vocab_size(),
            "shard range {range:?} invalid for V = {}",
            self.vocab_size()
        );
        let rows = changed_rows
            .iter()
            .filter(|&&v| range.contains(&v))
            .map(|&v| (v - range.start, self.bhat.row(v as usize).to_vec()))
            .collect();
        model_io::DeltaPayload {
            base_version,
            target_version,
            vocab_size: (range.end - range.start) as usize,
            n_topics: self.n_topics(),
            alpha: self.alpha,
            sampler_code: self.sampler_kind.code(),
            rows,
        }
    }

    /// Applies a `SABRDELTA` on top of this snapshot: the changed `B̂` rows
    /// are overwritten bit-for-bit and *only their* per-word samplers are
    /// rebuilt — `O(changed·K)`, which is what makes continuous publication
    /// affordable. The result is unpublished (version 0) until a cell or
    /// fleet assigns it the delta's target epoch.
    ///
    /// Version bookkeeping (does `base_version` match what is being
    /// served?) belongs to the caller — the publish seams reject or fall
    /// back on mismatch before applying.
    ///
    /// # Errors
    ///
    /// Returns [`SaberError::InvalidConfig`] when the delta's dimensions,
    /// sampler kind or α do not match this snapshot, or a row is out of
    /// range or ragged.
    pub fn apply_delta(
        &self,
        delta: &model_io::DeltaPayload,
    ) -> Result<InferenceSnapshot, SaberError> {
        if delta.vocab_size != self.vocab_size() || delta.n_topics != self.n_topics() {
            return Err(SaberError::InvalidConfig {
                detail: format!(
                    "delta is {} x {} but the snapshot is {} x {}",
                    delta.vocab_size,
                    delta.n_topics,
                    self.vocab_size(),
                    self.n_topics()
                ),
            });
        }
        if delta.sampler_code != self.sampler_kind.code() {
            return Err(SaberError::InvalidConfig {
                detail: format!(
                    "delta sampler code {} does not match the snapshot's {}",
                    delta.sampler_code,
                    self.sampler_kind.code()
                ),
            });
        }
        if delta.alpha.to_bits() != self.alpha.to_bits() {
            return Err(SaberError::InvalidConfig {
                detail: format!(
                    "delta alpha {} does not match the snapshot's {}",
                    delta.alpha, self.alpha
                ),
            });
        }
        let k = self.n_topics();
        let mut bhat = self.bhat.clone();
        let mut samplers = self.samplers.clone();
        for (row, values) in &delta.rows {
            let v = *row as usize;
            if v >= self.vocab_size() || values.len() != k {
                return Err(SaberError::InvalidConfig {
                    detail: format!(
                        "delta row {row} invalid for a {} x {k} snapshot",
                        delta.vocab_size
                    ),
                });
            }
            bhat.row_mut(v).copy_from_slice(values);
            samplers[v] = WordSampler::build(self.sampler_kind.preprocess(), bhat.row(v));
        }
        Ok(InferenceSnapshot {
            bhat,
            samplers,
            alpha: self.alpha,
            sampler_kind: self.sampler_kind,
            version: 0,
        })
    }

    /// The `n` highest-probability words of topic `k`, as `(word id,
    /// probability)` pairs in decreasing order.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_topics`.
    pub fn top_words(&self, k: usize, n: usize) -> Vec<(u32, f32)> {
        assert!(k < self.n_topics(), "topic {k} out of range");
        saber_core::model::top_words_of_column(&self.bhat, k, n)
    }

    /// Writes the snapshot in the versioned `SABRSNAP` binary format of
    /// [`saber_core::model_io`]: header (dimensions, α, sampler kind) plus
    /// the normalised `B̂` bits, little-endian and bit-exact. A process that
    /// [`InferenceSnapshot::load`]s the result serves **identical** answers
    /// — the per-word samplers are rebuilt deterministically from the same
    /// `B̂` rows — so a remote shard can boot from disk (or from a wire
    /// publication) instead of retraining.
    ///
    /// The publication version is *not* persisted: a loaded snapshot is
    /// unpublished (version 0) until a cell or fleet assigns it an epoch.
    ///
    /// # Errors
    ///
    /// Returns [`SaberError::Io`] on write failures.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), SaberError> {
        // Stream straight from the resident matrix: cloning B̂ into an
        // owned payload would double peak memory for exactly the large
        // snapshots persistence exists for.
        model_io::save_snapshot_parts(
            self.vocab_size(),
            self.n_topics(),
            self.alpha,
            self.sampler_kind.code(),
            self.bhat.as_slice(),
            writer,
        )
    }

    /// Reads a snapshot previously written by [`InferenceSnapshot::save`]
    /// and rebuilds its per-word sampling structures.
    ///
    /// # Errors
    ///
    /// Returns [`SaberError::Io`] for truncated input and
    /// [`SaberError::InvalidConfig`] for a bad magic number, unsupported
    /// format version, implausible dimensions or unknown sampler kind.
    pub fn load<R: Read>(reader: R) -> Result<InferenceSnapshot, SaberError> {
        let payload = model_io::load_snapshot(reader)?;
        let sampler_kind = SnapshotSampler::from_code(payload.sampler_code).ok_or_else(|| {
            SaberError::InvalidConfig {
                detail: format!("unknown snapshot sampler code {}", payload.sampler_code),
            }
        })?;
        let bhat = DenseMatrix::from_vec(payload.vocab_size, payload.n_topics, payload.bhat)?;
        let samplers = (0..bhat.rows())
            .map(|v| WordSampler::build(sampler_kind.preprocess(), bhat.row(v)))
            .collect();
        Ok(InferenceSnapshot {
            bhat,
            samplers,
            alpha: payload.alpha,
            sampler_kind,
            version: 0,
        })
    }

    /// [`InferenceSnapshot::save`] to a file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SaberError::Io`] on failure to create or write the file.
    pub fn save_file<P: AsRef<Path>>(&self, path: P) -> Result<(), SaberError> {
        let file = std::fs::File::create(path)?;
        self.save(std::io::BufWriter::new(file))
    }

    /// [`InferenceSnapshot::load`] from a file at `path`, pre-validating
    /// the header-declared dimensions against the file length: a truncated
    /// (or padded) shard file fails fast with a clear error *before* the
    /// multi-gigabyte `B̂` body is read, instead of as a short read
    /// mid-matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SaberError::InvalidConfig`] when the file length does not
    /// match what the header declares; otherwise see
    /// [`InferenceSnapshot::load`].
    pub fn load_file<P: AsRef<Path>>(path: P) -> Result<InferenceSnapshot, SaberError> {
        use std::io::Seek;
        let file = std::fs::File::open(path.as_ref())?;
        let actual = file.metadata()?.len();
        let mut reader = std::io::BufReader::new(file);
        let header = model_io::read_snapshot_header(&mut reader)?;
        let expected = header
            .encoded_bytes()
            .ok_or_else(|| SaberError::InvalidConfig {
                detail: format!(
                    "snapshot dimensions {} x {} overflow the encodable size",
                    header.vocab_size, header.n_topics
                ),
            })?;
        if actual != expected {
            return Err(SaberError::InvalidConfig {
                detail: format!(
                    "snapshot file {} is {actual} bytes but its header (V = {}, K = {}) declares {expected}",
                    path.as_ref().display(),
                    header.vocab_size,
                    header.n_topics
                ),
            });
        }
        reader.rewind()?;
        InferenceSnapshot::load(reader)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn planted_model(vocab: usize, k: usize) -> LdaModel {
        let mut model = LdaModel::new(vocab, k, 0.05, 0.01).unwrap();
        for v in 0..vocab {
            model.word_topic_mut()[(v, v % k)] = 50;
        }
        model.refresh_probabilities();
        model
    }

    #[test]
    fn snapshot_reflects_model_dimensions() {
        let model = planted_model(12, 3);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        assert_eq!(snap.n_topics(), 3);
        assert_eq!(snap.vocab_size(), 12);
        assert_eq!(snap.alpha(), 0.05);
        assert_eq!(snap.version(), 0);
        assert!(snap.memory_bytes() > (12 * 3 * 4) as u64);
    }

    #[test]
    fn infer_recovers_planted_topic_for_both_sampler_kinds() {
        let model = planted_model(12, 3);
        for kind in [SnapshotSampler::WaryTree, SnapshotSampler::AliasTable] {
            let snap = InferenceSnapshot::from_model(&model, kind);
            let theta = snap.infer_topics(&[2, 5, 8, 11, 2, 5], 7, FoldInParams::default());
            let argmax = theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(argmax, 2, "{kind:?}: theta = {theta:?}");
        }
    }

    #[test]
    fn infer_is_bit_identical_for_equal_seeds() {
        let model = planted_model(20, 4);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let words = [1u32, 5, 9, 13, 17, 1];
        let a = snap.infer_topics(&words, 99, FoldInParams::default());
        let b = snap.infer_topics(&words, 99, FoldInParams::default());
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // A soft model (every word shared between two topics) exposes
        // seed-dependent sampling noise; the planted one pins every token
        // and converges identically for any seed.
        let mut soft = LdaModel::new(20, 4, 0.5, 0.01).unwrap();
        for v in 0..20 {
            soft.word_topic_mut()[(v, v % 4)] = 3;
            soft.word_topic_mut()[(v, (v + 1) % 4)] = 2;
        }
        soft.refresh_probabilities();
        let soft_snap = InferenceSnapshot::from_model(&soft, SnapshotSampler::WaryTree);
        let mixed = [1u32, 2, 5, 9, 6, 3, 0, 7];
        let c = soft_snap.infer_topics(&mixed, 100, FoldInParams::default());
        let d = soft_snap.infer_topics(&mixed, 101, FoldInParams::default());
        assert_ne!(c, d);
    }

    #[test]
    fn em_kind_is_deterministic_and_seed_independent() {
        let model = planted_model(12, 3);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let params = FoldInParams {
            kind: FoldInKind::Em,
            ..FoldInParams::default()
        };
        let words = [2u32, 5, 8, 11, 2, 5];
        let a = snap.infer_topics(&words, 1, params);
        let b = snap.infer_topics(&words, 999, params);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "EM fold-in must not depend on the seed"
        );
        let argmax = a
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 2, "theta = {a:?}");
    }

    #[test]
    fn shard_slices_rows_bit_for_bit() {
        let model = planted_model(20, 4);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::AliasTable);
        let shard = snap.shard(5..13);
        assert_eq!(shard.vocab_size(), 8);
        assert_eq!(shard.n_topics(), 4);
        assert_eq!(shard.alpha(), snap.alpha());
        assert_eq!(shard.sampler_kind(), snap.sampler_kind());
        assert_eq!(shard.version(), 0);
        for local in 0..8usize {
            let global = local + 5;
            let a: Vec<u32> = shard.bhat.row(local).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = snap.bhat.row(global).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "row {global} must slice exactly");
        }
        // A shard's partial fold-in over a local word equals the full
        // snapshot's over the global word: same rows, same samplers.
        let params = FoldInParams::default();
        let from_shard = shard.partial_fold_in(&[2, 7, 2], 42, params);
        let from_full = snap.partial_fold_in(&[7, 12, 7], 42, params);
        assert_eq!(from_shard, from_full);
    }

    #[test]
    fn save_load_roundtrip_serves_identical_inference() {
        // The persistence satellite's contract: a snapshot that went
        // through disk answers bit-identically — B̂ bits are preserved and
        // the samplers rebuild deterministically from them.
        let model = planted_model(20, 4);
        for kind in [SnapshotSampler::WaryTree, SnapshotSampler::AliasTable] {
            let original = InferenceSnapshot::from_model(&model, kind);
            let mut buf = Vec::new();
            original.save(&mut buf).unwrap();
            let loaded = InferenceSnapshot::load(buf.as_slice()).unwrap();
            assert_eq!(loaded.vocab_size(), 20);
            assert_eq!(loaded.n_topics(), 4);
            assert_eq!(loaded.alpha().to_bits(), original.alpha().to_bits());
            assert_eq!(loaded.sampler_kind(), kind);
            assert_eq!(loaded.version(), 0, "loaded snapshots are unpublished");
            let words = [1u32, 5, 9, 13, 17, 1, 2, 19];
            for seed in [0u64, 7, 99] {
                for fold_kind in [FoldInKind::Esca, FoldInKind::Em] {
                    let params = FoldInParams {
                        kind: fold_kind,
                        ..FoldInParams::default()
                    };
                    let a = original.infer_topics(&words, seed, params);
                    let b = loaded.infer_topics(&words, seed, params);
                    assert_eq!(
                        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{kind:?}/{fold_kind:?}/seed {seed} diverged after a round trip"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_delta_reconstructs_a_full_publication_bit_for_bit() {
        let base = InferenceSnapshot::from_model(&planted_model(16, 4), SnapshotSampler::WaryTree);
        // The "next epoch" model: perturb a few rows, then refresh only
        // those rows against the cached topic totals — the trainer's lazy
        // path, which keeps every untouched B̂ row bit-identical.
        let mut model = planted_model(16, 4);
        for v in [2usize, 7, 11] {
            model.word_topic_mut()[(v, (v + 1) % 4)] += 9;
        }
        model.refresh_probability_rows(&[2, 7, 11]);
        let next = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let changed: Vec<u32> = (0..16u32)
            .filter(|&v| base.bhat.row(v as usize) != next.bhat.row(v as usize))
            .collect();
        assert!(!changed.is_empty() && changed.len() < 16);
        let delta = next.shard_delta(0..16, &changed, 3, 4);
        assert_eq!(delta.rows.len(), changed.len());
        let patched = base.apply_delta(&delta).unwrap();
        assert_eq!(patched.version(), 0);
        for v in 0..16usize {
            let a: Vec<u32> = patched.bhat.row(v).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = next.bhat.row(v).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "row {v} differs after applying the delta");
        }
        let words = [1u32, 2, 7, 11, 15, 2];
        for seed in [0u64, 9] {
            assert_eq!(
                patched.infer_topics(&words, seed, FoldInParams::default()),
                next.infer_topics(&words, seed, FoldInParams::default()),
                "patched snapshot must answer as the full one"
            );
        }
        // The delta survives its wire format and still applies exactly.
        let mut wire = Vec::new();
        saber_core::model_io::save_delta(&delta, &mut wire).unwrap();
        let decoded = saber_core::model_io::load_delta(wire.as_slice()).unwrap();
        let repatched = base.apply_delta(&decoded).unwrap();
        assert_eq!(
            repatched
                .bhat
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            next.bhat
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn shard_delta_rebases_rows_to_local_ids() {
        let snap = InferenceSnapshot::from_model(&planted_model(20, 4), SnapshotSampler::WaryTree);
        let delta = snap.shard_delta(5..13, &[1, 5, 6, 12, 13, 19], 1, 2);
        assert_eq!(delta.vocab_size, 8);
        let ids: Vec<u32> = delta.rows.iter().map(|(v, _)| *v).collect();
        assert_eq!(ids, vec![0, 1, 7], "global 5, 6, 12 re-based into 5..13");
        for (local, values) in &delta.rows {
            let global = *local as usize + 5;
            assert_eq!(values.as_slice(), snap.bhat.row(global));
        }
    }

    #[test]
    fn apply_delta_rejects_mismatched_shapes() {
        let snap = InferenceSnapshot::from_model(&planted_model(8, 2), SnapshotSampler::WaryTree);
        let other = InferenceSnapshot::from_model(&planted_model(6, 2), SnapshotSampler::WaryTree);
        let delta = other.shard_delta(0..6, &[0, 3], 1, 2);
        assert!(matches!(
            snap.apply_delta(&delta),
            Err(SaberError::InvalidConfig { .. })
        ));
        let alias =
            InferenceSnapshot::from_model(&planted_model(8, 2), SnapshotSampler::AliasTable);
        let delta = alias.shard_delta(0..8, &[1], 1, 2);
        assert!(matches!(
            snap.apply_delta(&delta),
            Err(SaberError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn load_file_rejects_truncated_and_padded_files_before_reading_the_body() {
        let dir = std::env::temp_dir().join("saberlda_snapshot_trunc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = InferenceSnapshot::from_model(&planted_model(10, 3), SnapshotSampler::WaryTree);
        let mut bytes = Vec::new();
        snap.save(&mut bytes).unwrap();

        let truncated = dir.join("truncated.bin");
        std::fs::write(&truncated, &bytes[..bytes.len() - 7]).unwrap();
        let err = InferenceSnapshot::load_file(&truncated).unwrap_err();
        assert!(
            matches!(err, SaberError::InvalidConfig { ref detail } if detail.contains("bytes")),
            "want a length-mismatch error, got {err:?}"
        );

        let padded = dir.join("padded.bin");
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 3]);
        std::fs::write(&padded, &long).unwrap();
        assert!(InferenceSnapshot::load_file(&padded).is_err());

        let intact = dir.join("intact.bin");
        std::fs::write(&intact, &bytes).unwrap();
        assert_eq!(
            InferenceSnapshot::load_file(&intact).unwrap().vocab_size(),
            10
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_unknown_sampler_code() {
        let model = planted_model(6, 2);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        // Byte 32 is the sampler code (8 magic + 4 version + 8 V + 8 K +
        // 4 alpha).
        buf[32] = 7;
        assert!(matches!(
            InferenceSnapshot::load(buf.as_slice()),
            Err(SaberError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join("saberlda_snapshot_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let snap = InferenceSnapshot::from_model(&planted_model(8, 2), SnapshotSampler::AliasTable);
        snap.save_file(&path).unwrap();
        let loaded = InferenceSnapshot::load_file(&path).unwrap();
        assert_eq!(loaded.vocab_size(), 8);
        assert_eq!(loaded.sampler_kind(), SnapshotSampler::AliasTable);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn shard_rejects_out_of_bounds_ranges() {
        let model = planted_model(6, 2);
        InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree).shard(2..9);
    }

    #[test]
    fn top_words_follow_planted_structure() {
        let model = planted_model(12, 3);
        let snap = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let top = snap.top_words(1, 4);
        assert_eq!(top.len(), 4);
        for (word, _) in top {
            assert_eq!(word % 3, 1, "word {word} not planted in topic 1");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn top_words_rejects_bad_topic() {
        let model = planted_model(6, 2);
        InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree).top_words(2, 1);
    }
}
