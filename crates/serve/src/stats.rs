//! Lock-free latency histograms and quantile snapshots.
//!
//! Serving a production workload means the *tail* matters more than the
//! mean: a micro-batch scheduler that looks fine on average can still stall
//! p99. This module provides the observability primitive behind
//! [`ServeStats`](crate::ServeStats) and the HTTP front-end's `/stats`
//! endpoint: a [`LatencyHistogram`] of atomically-updated log₂ buckets that
//! threads record into without ever taking a lock, and an immutable
//! [`HistogramSnapshot`] that turns the bucket counts into p50/p95/p99
//! estimates.
//!
//! Buckets are powers of two over microseconds: bucket `i` covers
//! `[2^i, 2^(i+1))` µs (bucket 0 also absorbs sub-microsecond samples, the
//! last bucket absorbs everything ≥ ~12.7 days *and* bumps an explicit
//! overflow counter so the clamping is visible in `/stats` and
//! `/metrics`). Log bucketing bounds the relative quantile error at ~2×
//! while keeping `record` a single atomic increment — the standard trade
//! for hot-path telemetry.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use saber_serve::stats::LatencyHistogram;
//!
//! let hist = LatencyHistogram::new();
//! for ms in [1u64, 2, 3, 4, 100] {
//!     hist.record(Duration::from_millis(ms));
//! }
//! let snap = hist.snapshot();
//! assert_eq!(snap.count(), 5);
//! let (p50, p99) = (snap.p50().unwrap(), snap.p99().unwrap());
//! assert!(p50 <= p99);
//! assert!(p99 >= 65_536.0, "the 100 ms outlier dominates p99");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: `[1 µs, 2^40 µs ≈ 12.7 days)`, plus underflow
/// into bucket 0 and overflow into the last bucket.
pub const N_BUCKETS: usize = 40;

/// A fixed-size, lock-free histogram of durations in log₂-of-microseconds
/// buckets.
///
/// `record` is wait-free (one relaxed fetch-add); `snapshot` reads every
/// bucket without stopping writers, so a snapshot taken under load is a
/// *consistent-enough* view: per-bucket counts are exact, cross-bucket skew
/// is bounded by the records that land mid-scan.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    /// Sum of recorded microseconds, for mean latency.
    sum_micros: AtomicU64,
    /// Samples at or above the top bucket's nominal upper bound
    /// (`2^N_BUCKETS` µs). They still land in the last bucket — totals and
    /// quantiles stay consistent — but this counter makes the clamping
    /// visible instead of silently folding a 20-day sample into "12.7
    /// days" with no indicator.
    overflow: AtomicU64,
    /// Per-bucket exemplar: the raw trace id of the most recent traced
    /// sample that landed in the bucket (0 = none yet). Turns "the p99
    /// bucket moved" into "this request moved it" — `GET /trace/recent`
    /// joins these ids against the trace ring.
    exemplars: [AtomicU64; N_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index a duration lands in: `floor(log₂(µs))`, clamped to
    /// the bucket range (sub-microsecond → 0, ≥ 2⁴⁰ µs → last).
    pub fn bucket_index(duration: Duration) -> usize {
        let micros = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        if micros == 0 {
            return 0;
        }
        ((63 - micros.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }

    /// The `[low, high)` microsecond range bucket `i` covers. Bucket 0 also
    /// holds sub-microsecond samples; the last bucket is open-ended (its
    /// `high` is the nominal power of two).
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < N_BUCKETS, "bucket {i} out of range");
        (1u64 << i, 1u64 << (i + 1))
    }

    /// Records one sample. Wait-free; safe to call from any number of
    /// threads concurrently. Samples at or above the top bucket bound are
    /// counted in the last bucket *and* in the explicit overflow counter
    /// (see [`HistogramSnapshot::overflow`]).
    pub fn record(&self, duration: Duration) {
        let micros = duration.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(duration)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        if micros >= 1u64 << N_BUCKETS {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one sample and attaches `trace_id` as the bucket's exemplar
    /// (ignored when 0, the untraced sentinel). Same wait-free cost class
    /// as [`LatencyHistogram::record`]: two or three relaxed atomic ops.
    pub fn record_with_exemplar(&self, duration: Duration, trace_id: u64) {
        let i = Self::bucket_index(duration);
        self.record(duration);
        if trace_id != 0 {
            self.exemplars[i].store(trace_id, Ordering::Relaxed);
        }
    }

    /// The exemplar trace id attached to bucket `i`, or `None` when no
    /// traced sample has landed there yet.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_BUCKETS`.
    pub fn exemplar(&self, i: usize) -> Option<u64> {
        let raw = self.exemplars[i].load(Ordering::Relaxed);
        (raw != 0).then_some(raw)
    }

    /// The non-empty `(bucket index, exemplar trace id)` pairs, top bucket
    /// first — the slow tail's exemplars lead.
    pub fn exemplars(&self) -> Vec<(usize, u64)> {
        (0..N_BUCKETS)
            .rev()
            .filter_map(|i| self.exemplar(i).map(|id| (i, id)))
            .collect()
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; N_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: counts.iter().sum(),
            counts,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum_micros: u64,
    overflow: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; N_BUCKETS],
            count: 0,
            sum_micros: 0,
            overflow: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples in bucket `i` (see [`LatencyHistogram::bucket_bounds`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_BUCKETS`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Sum of all recorded microseconds — with the per-bucket counts, the
    /// full state of the histogram. This is what the shard-info wire codec
    /// ships so a router can merge remote histograms at full fidelity
    /// (the JSON `/stats` body only carries derived quantiles).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Samples that were at or above the last bucket's nominal upper bound
    /// when recorded. They are included in [`HistogramSnapshot::count`] and
    /// in the last bucket, so a nonzero overflow means "the top bucket's
    /// quantile estimates understate the true tail".
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Rebuilds a snapshot from sparse `(bucket index, count)` pairs, a
    /// microsecond sum and an overflow count — the inverse of iterating
    /// [`HistogramSnapshot::bucket_count`] over the non-empty buckets.
    /// Repeated indices accumulate. Returns `None` when an index is outside
    /// [`N_BUCKETS`].
    pub fn from_sparse_buckets(
        pairs: impl IntoIterator<Item = (usize, u64)>,
        sum_micros: u64,
        overflow: u64,
    ) -> Option<HistogramSnapshot> {
        let mut counts = [0u64; N_BUCKETS];
        for (i, c) in pairs {
            *counts.get_mut(i)? += c;
        }
        Some(HistogramSnapshot {
            count: counts.iter().sum(),
            counts,
            sum_micros,
            overflow,
        })
    }

    /// Mean latency in microseconds, or `None` when empty.
    pub fn mean_micros(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_micros as f64 / self.count as f64)
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, or `None` when the
    /// histogram is empty.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// `⌈q·n⌉`-th smallest sample, so it is exact to within the bucket's 2×
    /// width and — crucially for alerting — **monotone in `q`**: for any
    /// recorded data, `quantile(a) ≤ quantile(b)` whenever `a ≤ b`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (low, high) = LatencyHistogram::bucket_bounds(i);
                return Some(((low as f64) * (high as f64)).sqrt());
            }
        }
        // `rank ≤ count = Σ counts`, so the loop always returns — but if
        // that bookkeeping ever broke, a monitoring endpoint must report
        // "no estimate", not abort the serving process.
        None
    }

    /// Median latency estimate in microseconds.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile latency estimate in microseconds.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile latency estimate in microseconds.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merges another snapshot into this one (bucket-wise sum, overflow
    /// counts included) — used to aggregate per-endpoint histograms into a
    /// service-wide view.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), None);
        assert_eq!(snap.mean_micros(), None);
        assert_eq!(snap, HistogramSnapshot::default());
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for (micros, expect) in [
            (0u64, 0),
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 2),
            (1023, 9),
            (1024, 10),
        ] {
            assert_eq!(
                LatencyHistogram::bucket_index(Duration::from_micros(micros)),
                expect,
                "{micros} µs"
            );
        }
        // Overflow clamps to the last bucket instead of indexing out of range.
        assert_eq!(
            LatencyHistogram::bucket_index(Duration::from_secs(u64::MAX / 2)),
            N_BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_bracket_known_distribution() {
        let hist = LatencyHistogram::new();
        // 99 samples at ~1 ms, one at ~1 s: p50 sits in the 1 ms bucket,
        // p99 must see the outlier (rank 100 ≥ ceil(0.99·100)... rank 99 is
        // still 1 ms; use 2 outliers so rank 99 lands on one).
        for _ in 0..98 {
            hist.record(Duration::from_micros(1000));
        }
        hist.record(Duration::from_secs(1));
        hist.record(Duration::from_secs(1));
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.p50().unwrap();
        assert!((512.0..2048.0).contains(&p50), "p50 = {p50}");
        let p99 = snap.p99().unwrap();
        assert!(p99 >= 524_288.0, "p99 = {p99} must reflect the outliers");
        assert!(snap.mean_micros().unwrap() > 1000.0);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(10));
        b.record(Duration::from_millis(50));
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(
            merged.bucket_count(3),
            2,
            "both 10 µs samples share a bucket"
        );
    }

    #[test]
    fn sparse_bucket_roundtrip_reconstructs_the_snapshot() {
        let hist = LatencyHistogram::new();
        for us in [1u64, 3, 900, 900, 5_000_000] {
            hist.record(Duration::from_micros(us));
        }
        let snap = hist.snapshot();
        let sparse: Vec<(usize, u64)> = (0..N_BUCKETS)
            .filter(|&i| snap.bucket_count(i) > 0)
            .map(|i| (i, snap.bucket_count(i)))
            .collect();
        let rebuilt =
            HistogramSnapshot::from_sparse_buckets(sparse, snap.sum_micros(), snap.overflow())
                .unwrap();
        assert_eq!(rebuilt, snap);
        assert_eq!(
            HistogramSnapshot::from_sparse_buckets([], 0, 0).unwrap(),
            HistogramSnapshot::default()
        );
        assert!(HistogramSnapshot::from_sparse_buckets([(N_BUCKETS, 1)], 0, 0).is_none());
    }

    #[test]
    fn overflow_is_counted_explicitly() {
        let hist = LatencyHistogram::new();
        hist.record(Duration::from_micros(500));
        // 2^40 µs ≈ 12.7 days is the nominal top bound; anything at or
        // above it still lands in the last bucket but bumps the overflow
        // counter instead of vanishing into "12.7 days" silently.
        hist.record(Duration::from_micros(1 << N_BUCKETS));
        hist.record(Duration::from_secs(30 * 24 * 3600));
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 3, "overflowed samples still count");
        assert_eq!(snap.bucket_count(N_BUCKETS - 1), 2);
        assert_eq!(snap.overflow(), 2);
        // The boundary itself: the last in-range sample does not overflow.
        let edge = LatencyHistogram::new();
        edge.record(Duration::from_micros((1 << N_BUCKETS) - 1));
        assert_eq!(edge.snapshot().overflow(), 0);
        // Overflow merges additively alongside the buckets.
        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.overflow(), 4);
        assert_eq!(merged.count(), 6);
        // And survives the sparse round trip.
        let sparse: Vec<(usize, u64)> = (0..N_BUCKETS)
            .filter(|&i| snap.bucket_count(i) > 0)
            .map(|i| (i, snap.bucket_count(i)))
            .collect();
        let rebuilt =
            HistogramSnapshot::from_sparse_buckets(sparse, snap.sum_micros(), snap.overflow())
                .unwrap();
        assert_eq!(rebuilt, snap);
    }

    /// Satellite coverage (ISSUE 8): many threads record into per-worker
    /// histograms concurrently while a reader merges snapshots mid-flight;
    /// the final merge must preserve every sample and the overflow count.
    #[test]
    fn concurrent_workers_merge_losslessly() {
        const WORKERS: usize = 8;
        const PER_WORKER: u64 = 2_000;
        let hists: std::sync::Arc<Vec<LatencyHistogram>> =
            std::sync::Arc::new((0..WORKERS).map(|_| LatencyHistogram::new()).collect());
        let threads: Vec<_> = (0..WORKERS)
            .map(|w| {
                let hists = std::sync::Arc::clone(&hists);
                std::thread::spawn(move || {
                    for i in 0..PER_WORKER {
                        // A deterministic spread over 5 decades, plus one
                        // overflowing sample per worker.
                        let us = 1 + (w as u64 * 7919 + i * 104_729) % 10_000_000;
                        hists[w].record(Duration::from_micros(us));
                    }
                    hists[w].record(Duration::from_micros(1 << N_BUCKETS));
                })
            })
            .collect();
        // Interleaved mid-flight merges must never observe more than the
        // final totals (snapshots are point-in-time copies).
        let mut mid = HistogramSnapshot::default();
        for h in hists.iter() {
            mid.merge(&h.snapshot());
        }
        assert!(mid.count() <= WORKERS as u64 * (PER_WORKER + 1));
        for t in threads {
            t.join().unwrap();
        }
        let mut merged = HistogramSnapshot::default();
        for h in hists.iter() {
            merged.merge(&h.snapshot());
        }
        assert_eq!(merged.count(), WORKERS as u64 * (PER_WORKER + 1));
        assert_eq!(merged.overflow(), WORKERS as u64);
        // The merged quantiles are bracketed by the per-worker extremes.
        for q in [0.5, 0.95, 0.99] {
            let per_worker: Vec<f64> = hists
                .iter()
                .map(|h| h.snapshot().quantile(q).unwrap())
                .collect();
            let merged_q = merged.quantile(q).unwrap();
            let lo = per_worker.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = per_worker.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                (lo..=hi).contains(&merged_q),
                "q{q}: merged {merged_q} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn exemplars_track_the_last_traced_sample_per_bucket() {
        let hist = LatencyHistogram::new();
        hist.record(Duration::from_micros(10)); // untraced: no exemplar
        hist.record_with_exemplar(Duration::from_micros(12), 0xAA);
        hist.record_with_exemplar(Duration::from_micros(13), 0xBB);
        hist.record_with_exemplar(Duration::from_millis(50), 0xCC);
        hist.record_with_exemplar(Duration::from_micros(900), 0); // untraced sentinel
        let bucket_10us = LatencyHistogram::bucket_index(Duration::from_micros(10));
        assert_eq!(hist.exemplar(bucket_10us), Some(0xBB), "last write wins");
        let bucket_900us = LatencyHistogram::bucket_index(Duration::from_micros(900));
        assert_eq!(hist.exemplar(bucket_900us), None);
        // Top (slowest) buckets lead the exemplar listing.
        let bucket_50ms = LatencyHistogram::bucket_index(Duration::from_millis(50));
        assert_eq!(
            hist.exemplars(),
            vec![(bucket_50ms, 0xCC), (bucket_10us, 0xBB)]
        );
        // Exemplars ride alongside the counts without perturbing them.
        assert_eq!(hist.snapshot().count(), 5);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let hist = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        hist.record(Duration::from_micros(1 + (t * 1000 + i) % 5000));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hist.snapshot().count(), 4000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every sample lands in the bucket whose bounds contain it.
        #[test]
        fn samples_land_in_their_bucket(samples in proptest::collection::vec(1u64..5_000_000, 1..64)) {
            let hist = LatencyHistogram::new();
            for &us in &samples {
                hist.record(Duration::from_micros(us));
                let i = LatencyHistogram::bucket_index(Duration::from_micros(us));
                let (low, high) = LatencyHistogram::bucket_bounds(i);
                prop_assert!(low <= us && us < high, "{us} µs not in [{low}, {high})");
            }
            let snap = hist.snapshot();
            prop_assert_eq!(snap.count(), samples.len() as u64);
            // Per-bucket counts add up and agree with a direct tally.
            for i in 0..N_BUCKETS {
                let expect = samples
                    .iter()
                    .filter(|&&us| LatencyHistogram::bucket_index(Duration::from_micros(us)) == i)
                    .count() as u64;
                prop_assert_eq!(snap.bucket_count(i), expect);
            }
        }

        /// Merging preserves the total count (and per-bucket counts), and
        /// every quantile of the merged histogram is bracketed by the two
        /// inputs' quantiles — the property that makes a router's
        /// cross-shard aggregation honest (it can never report a tail
        /// outside what some shard actually saw).
        #[test]
        fn merge_preserves_counts_and_brackets_quantiles(
            a_samples in proptest::collection::vec(0u64..10_000_000, 1..96),
            b_samples in proptest::collection::vec(0u64..10_000_000, 1..96),
        ) {
            let (a, b) = (LatencyHistogram::new(), LatencyHistogram::new());
            for &us in &a_samples {
                a.record(Duration::from_micros(us));
            }
            for &us in &b_samples {
                b.record(Duration::from_micros(us));
            }
            let (a, b) = (a.snapshot(), b.snapshot());
            let mut merged = a.clone();
            merged.merge(&b);
            prop_assert_eq!(merged.count(), a.count() + b.count());
            for i in 0..N_BUCKETS {
                prop_assert_eq!(
                    merged.bucket_count(i),
                    a.bucket_count(i) + b.bucket_count(i)
                );
            }
            for q in [0.01, 0.25, 0.50, 0.95, 0.99, 1.0] {
                let (qa, qb, qm) = (
                    a.quantile(q).unwrap(),
                    b.quantile(q).unwrap(),
                    merged.quantile(q).unwrap(),
                );
                prop_assert!(
                    qa.min(qb) <= qm && qm <= qa.max(qb),
                    "q{}: merged {} outside [{}, {}]", q, qm, qa.min(qb), qa.max(qb)
                );
            }
            // Merge order cannot matter (commutativity).
            let mut other_way = b.clone();
            other_way.merge(&a);
            prop_assert_eq!(merged, other_way);
        }

        /// Overflow counts are preserved under merge for arbitrary sample
        /// mixes spanning the in-range/overflow boundary.
        #[test]
        fn merge_preserves_overflow(
            a_samples in proptest::collection::vec(0u64..1 << 42, 1..64),
            b_samples in proptest::collection::vec(0u64..1 << 42, 1..64),
        ) {
            let expect = |samples: &[u64]| {
                samples.iter().filter(|&&us| us >= 1 << N_BUCKETS).count() as u64
            };
            let (a, b) = (LatencyHistogram::new(), LatencyHistogram::new());
            for &us in &a_samples {
                a.record(Duration::from_micros(us));
            }
            for &us in &b_samples {
                b.record(Duration::from_micros(us));
            }
            let (a, b) = (a.snapshot(), b.snapshot());
            prop_assert_eq!(a.overflow(), expect(&a_samples));
            prop_assert_eq!(b.overflow(), expect(&b_samples));
            let mut merged = a.clone();
            merged.merge(&b);
            prop_assert_eq!(merged.overflow(), a.overflow() + b.overflow());
            prop_assert_eq!(merged.count(), a.count() + b.count());
        }

        /// Quantiles are monotone: p50 ≤ p95 ≤ p99 for arbitrary sample sets.
        #[test]
        fn quantiles_are_monotone(samples in proptest::collection::vec(0u64..10_000_000, 1..128)) {
            let hist = LatencyHistogram::new();
            for &us in &samples {
                hist.record(Duration::from_micros(us));
            }
            let snap = hist.snapshot();
            let (p50, p95, p99) = (
                snap.p50().unwrap(),
                snap.p95().unwrap(),
                snap.p99().unwrap(),
            );
            prop_assert!(p50 <= p95, "p50 {} > p95 {}", p50, p95);
            prop_assert!(p95 <= p99, "p95 {} > p99 {}", p95, p99);
            // Quantiles stay within one bucket (2×) of the true value.
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let true_p50 = sorted[(samples.len() - 1) / 2].max(1) as f64;
            prop_assert!(p50 >= true_p50 / 2.0 && p50 <= true_p50 * 2.0,
                "p50 estimate {} vs true {}", p50, true_p50);
        }
    }
}
