//! Hot model swap: publish refreshed snapshots while serving continues.
//!
//! The single primitive here, [`SnapshotCell`], decouples the publication
//! rate (a trainer pushing a new [`InferenceSnapshot`] every iteration)
//! from the serving rate (workers loading the current snapshot once per
//! micro-batch): readers never block publishers, publishers never wait for
//! readers, and the version counter lets a cached reader skip the lock
//! entirely when nothing changed.
//!
//! The version stamp is also what makes *sharded* hot swap safe: a
//! [`ShardRouter`](crate::ShardRouter) publishes one cell per shard in
//! lockstep and compares the versions reported back by every partial
//! response, so a request that straddles the fleet-wide swap is detected
//! (mixed versions) and retried instead of merged across model versions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::InferenceSnapshot;

/// A publication point for [`InferenceSnapshot`]s.
///
/// Readers take an `Arc` clone of the current snapshot and use it for as
/// long as they like; [`SnapshotCell::publish`] swaps in a replacement
/// without waiting for them. In-flight requests keep the snapshot they
/// started with (the old `Arc` stays alive until its last reader drops it),
/// so a running trainer can publish between iterations while serving
/// continues uninterrupted.
///
/// The hot read path is wait-free in the common case: workers cache the
/// `Arc` they already hold and re-read the cell only when the atomic
/// version counter moves (see [`SnapshotCell::load_if_newer`]). The slow
/// path takes a `Mutex` only long enough to clone an `Arc`.
#[derive(Debug)]
pub struct SnapshotCell {
    current: Mutex<Arc<InferenceSnapshot>>,
    /// Monotonic publication counter; starts at 1 for the initial snapshot.
    version: AtomicU64,
}

impl SnapshotCell {
    /// Creates a cell serving `initial` as version 1.
    pub fn new(mut initial: InferenceSnapshot) -> Self {
        initial.set_version(1);
        SnapshotCell {
            current: Mutex::new(Arc::new(initial)),
            version: AtomicU64::new(1),
        }
    }

    /// Atomically replaces the served snapshot, assigning and returning the
    /// next version number. Readers observe the swap on their next load; the
    /// previous snapshot stays alive for requests already using it.
    pub fn publish(&self, snapshot: InferenceSnapshot) -> u64 {
        // The critical sections below only ever swap an Arc, so a poisoned
        // lock cannot hold a half-written snapshot — recover and continue.
        let mut slot = self.current.lock().unwrap_or_else(|e| e.into_inner());
        let version = self.version.load(Ordering::Acquire) + 1;
        Self::store(&mut slot, &self.version, snapshot, version);
        version
    }

    /// Like [`SnapshotCell::publish`] but with a caller-chosen version —
    /// how a remote shard lands on the *fleet's* epoch instead of its own
    /// local counter (a restarted shard may be several epochs behind).
    /// `version` must be greater than the current one; the caller
    /// serialises publications (see `TopicServer`'s publish lock).
    pub fn publish_with_version(&self, snapshot: InferenceSnapshot, version: u64) -> u64 {
        let mut slot = self.current.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(
            version > self.version.load(Ordering::Acquire),
            "epoch-pinned publication must move the version forward"
        );
        Self::store(&mut slot, &self.version, snapshot, version);
        version
    }

    fn store(
        slot: &mut Arc<InferenceSnapshot>,
        cell_version: &AtomicU64,
        mut snapshot: InferenceSnapshot,
        version: u64,
    ) {
        snapshot.set_version(version);
        *slot = Arc::new(snapshot);
        // Publish the version only after the slot holds the new snapshot, so
        // `load_if_newer` can never see the new version with the old data.
        cell_version.store(version, Ordering::Release);
    }

    /// The currently served snapshot.
    pub fn load(&self) -> Arc<InferenceSnapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Refreshes `cached` only if a newer snapshot has been published:
    /// a single atomic load when nothing changed. Returns `true` when the
    /// cache was refreshed.
    pub fn load_if_newer(&self, cached: &mut Arc<InferenceSnapshot>) -> bool {
        if self.version.load(Ordering::Acquire) == cached.version() {
            return false;
        }
        *cached = self.load();
        true
    }

    /// The current publication version (1-based).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSampler;
    use saber_core::model::LdaModel;

    fn tiny_snapshot() -> InferenceSnapshot {
        let mut model = LdaModel::new(4, 2, 0.1, 0.01).unwrap();
        model.word_topic_mut()[(0, 0)] = 3;
        model.refresh_probabilities();
        InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree)
    }

    #[test]
    fn publish_bumps_version_and_swaps() {
        let cell = SnapshotCell::new(tiny_snapshot());
        assert_eq!(cell.version(), 1);
        assert_eq!(cell.load().version(), 1);
        let v2 = cell.publish(tiny_snapshot());
        assert_eq!(v2, 2);
        assert_eq!(cell.load().version(), 2);
    }

    #[test]
    fn old_readers_keep_their_snapshot_across_a_swap() {
        let cell = SnapshotCell::new(tiny_snapshot());
        let held = cell.load();
        cell.publish(tiny_snapshot());
        assert_eq!(held.version(), 1, "in-flight reader must keep its snapshot");
        assert_eq!(cell.load().version(), 2);
    }

    #[test]
    fn publish_with_version_lands_on_the_requested_epoch() {
        let cell = SnapshotCell::new(tiny_snapshot());
        assert_eq!(cell.publish_with_version(tiny_snapshot(), 7), 7);
        assert_eq!(cell.version(), 7);
        assert_eq!(cell.load().version(), 7);
        // A regular publish continues from there.
        assert_eq!(cell.publish(tiny_snapshot()), 8);
    }

    #[test]
    fn load_if_newer_is_a_no_op_when_current() {
        let cell = SnapshotCell::new(tiny_snapshot());
        let mut cached = cell.load();
        assert!(!cell.load_if_newer(&mut cached));
        cell.publish(tiny_snapshot());
        assert!(cell.load_if_newer(&mut cached));
        assert_eq!(cached.version(), 2);
        assert!(!cell.load_if_newer(&mut cached));
    }

    #[test]
    fn concurrent_publish_and_load() {
        let cell = Arc::new(SnapshotCell::new(tiny_snapshot()));
        let publisher = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    cell.publish(tiny_snapshot());
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..200 {
                        let v = cell.load().version();
                        assert!(v >= last, "version went backwards: {last} -> {v}");
                        last = v;
                    }
                })
            })
            .collect();
        publisher.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.version(), 51);
    }
}
