//! The transport seam between a [`ShardRouter`](crate::ShardRouter) and its
//! shards.
//!
//! PR 4's router assumed its shards were function calls away: it held
//! [`TopicServer`] handles and pushed jobs straight into their queues. The
//! [`ShardTransport`] trait re-cuts that seam so the router only speaks a
//! small protocol — submit a partial fold-in, fetch top-words rows, read
//! shard stats/health, observe the snapshot epoch, and stage/commit an
//! epoch publication — and *where* the shard lives becomes an
//! implementation detail:
//!
//! * [`LocalTransport`] wraps an in-process [`TopicServer`], preserving PR
//!   4's behaviour bit for bit (same queues, same seeds, same float
//!   sequences — the differential suite in `tests/sharded_serving.rs` runs
//!   unchanged against it).
//! * [`HttpTransport`] speaks the crate's existing HTTP/1.1 wire format
//!   (`POST /infer-partial`, `GET /shard-info`, `POST /publish-shard`,
//!   `POST /commit-epoch`; see [`crate::wire`]) to a shard process on
//!   another machine. Because the JSON codec round-trips `f64`s exactly,
//!   a remote EM fan-out reproduces the local one bit for bit, and the
//!   router's epoch-skew detection works identically: every partial
//!   response carries the snapshot version that produced it.
//!
//! Publication is where the two transports genuinely differ, so the trait
//! splits it into the two phases a fleet-wide all-or-nothing swap needs:
//! [`ShardTransport::prepare_publish`] stages an epoch-tagged snapshot
//! slice on every shard (local: a stash behind a mutex; remote: an upload),
//! and only when *every* stage succeeded does the router run the cheap
//! [`ShardTransport::commit_publish`] loop that actually swaps — keeping
//! the mixed-version window as tight as a single in-process Arc swap.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use saber_core::model_io::{save_delta, DeltaPayload};
use saber_trace::TraceContext;

use crate::server::{
    expect_partial, partial_spans, JobReply, JobTimings, PartialRequest, PartialResponse,
};
use crate::snapshot::{FoldInParams, InferenceSnapshot};
use crate::wire;
use crate::{ServeError, ServeStats, TopicServer};

/// A shard's self-description, as reported by [`ShardTransport::shard_info`]
/// (and served remotely as `GET /shard-info`). The router validates a fleet
/// against this before fanning anything out, and reads the embedded
/// [`ServeStats`] for its fleet-wide observability view.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// The snapshot version the shard currently serves.
    pub epoch: u64,
    /// Number of vocabulary words the shard holds (its local id space is
    /// `0..vocab_size`).
    pub vocab_size: usize,
    /// Topic count `K` — must agree across the fleet.
    pub n_topics: usize,
    /// Document–topic smoothing α — must agree across the fleet (it enters
    /// the router-side merge).
    pub alpha: f32,
    /// The global word-id range `[start, end)` the shard was configured to
    /// serve, when known; defaults to the local `[0, vocab_size)`.
    pub shard_range: (u32, u32),
    /// The fold-in parameters the shard applies to partial requests — must
    /// agree with the router's, or merged answers silently change meaning.
    pub fold_in: FoldInParams,
    /// The shard's serving counters, histogram included (lossless over the
    /// wire; see [`crate::wire::encode_shard_info`]).
    pub stats: ServeStats,
}

/// The outcome of a bounded [`PendingPartial::wait_until`] poll: either a
/// settled reply, or the still-pending handle so the caller can resume the
/// wait later. Handing the handle back (instead of erroring at the bound)
/// is what lets the router race two replicas of the same shard — the
/// mechanism behind hedged requests — and interleave deadline checks
/// without dedicating a thread per in-flight leg.
#[derive(Debug)]
pub enum PollOutcome<P> {
    /// The shard answered (or failed terminally) within the bound.
    Ready(Result<PartialResponse, ServeError>),
    /// No reply yet; resume with another `wait_until` or a final `wait`.
    Pending(P),
}

/// A submitted-but-not-yet-answered partial request; the other half of
/// [`ShardTransport::submit_partial`]. Splitting submission from the wait
/// is what lets the router land every shard's request before blocking on
/// any reply, so shards execute concurrently.
///
/// Dropping a pending handle cancels the wait: the shard's eventual reply
/// is discarded at the channel (both transports tolerate a vanished
/// receiver), which is how the router abandons the losing leg of a hedged
/// request.
pub trait PendingPartial {
    /// Awaits the shard's reply, honouring the request deadline the router
    /// passed at submission.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] past the deadline,
    /// [`ServeError::Closed`] when the shard (or its transport) has shut
    /// down, and transport- or shard-reported errors otherwise.
    fn wait(self, deadline: Option<Instant>) -> Result<PartialResponse, ServeError>;

    /// Waits until `until` at the latest. Unlike [`PendingPartial::wait`],
    /// reaching the bound is not an error: the handle comes back as
    /// [`PollOutcome::Pending`] so the caller can hedge, check its own
    /// deadline, or resume waiting. A bound already in the past still
    /// checks for an already-arrived reply before yielding the handle.
    fn wait_until(self, until: Instant) -> PollOutcome<Self>
    where
        Self: Sized;
}

/// How a [`ShardRouter`](crate::ShardRouter) reaches one shard.
///
/// Implementations must be usable from many router threads at once (the
/// router fans out concurrently), and every operation must report the
/// shard's snapshot version faithfully — the router's mixed-epoch
/// detection depends on it.
pub trait ShardTransport: Send + Sync + std::fmt::Debug {
    /// The in-flight handle [`ShardTransport::submit_partial`] returns.
    type Pending: PendingPartial;

    /// Submits one partial fold-in (ESCA chain or EM round) over
    /// shard-local word ids. With a deadline the submission must be
    /// fail-fast ([`ServeError::Overloaded`] instead of blocking on a full
    /// queue); without one it may block.
    ///
    /// `trace` is the router's distributed-tracing context for this
    /// fan-out; when enabled the shard answers with its span subtree in
    /// [`PartialResponse::spans`] (remote transports forward the context as
    /// the `X-Saber-Trace` header). Pass
    /// [`TraceContext::disabled()`] for untraced requests — tracing must
    /// never change the bytes of an answer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] on fail-fast admission, transport errors
    /// for unreachable shards, [`ServeError::Closed`] after shutdown.
    fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Option<Instant>,
        trace: TraceContext,
    ) -> Result<Self::Pending, ServeError>;

    /// The `n` highest-probability words of topic `k`, in *shard-local* ids
    /// (the router re-bases them to global ids).
    ///
    /// # Errors
    ///
    /// Transport errors, or the shard's own rejection of `k`.
    fn top_words(&self, k: usize, n: usize) -> Result<Vec<(u32, f32)>, ServeError>;

    /// The shard's self-description and full serving counters.
    ///
    /// # Errors
    ///
    /// Transport errors for unreachable shards.
    fn shard_info(&self) -> Result<ShardInfo, ServeError>;

    /// The snapshot version the shard currently serves — the cheap epoch
    /// probe (`GET /healthz` remotely; an atomic load locally).
    ///
    /// # Errors
    ///
    /// Transport errors for unreachable shards.
    fn observe_epoch(&self) -> Result<u64, ServeError>;

    /// Stages `slice` as the shard's next snapshot, tagged with the fleet
    /// epoch it will serve as. Staging does **not** change what the shard
    /// serves; the router stages every shard before committing any, so a
    /// failure here aborts the publication with the old epoch intact
    /// everywhere.
    ///
    /// # Errors
    ///
    /// Transport errors, or shard-side rejection (shape mismatch, epoch
    /// not ahead of the current one).
    fn prepare_publish(&self, slice: InferenceSnapshot, epoch: u64) -> Result<(), ServeError>;

    /// Stages an incremental publication: a `SABRDELTA` of the rows that
    /// changed between `delta.base_version` (what the shard should be
    /// serving) and `delta.target_version` (the epoch being staged).
    /// Returns `Ok(true)` when the shard applied and staged the patched
    /// snapshot, and `Ok(false)` when it *declined* — its served version
    /// does not match the delta's base, or the transport/shard predates
    /// delta support — in which case the caller falls back to a full
    /// [`ShardTransport::prepare_publish`] of the same epoch. Both paths
    /// stage bit-identical snapshots, so the fallback is invisible to
    /// correctness.
    ///
    /// The default declines, so third-party transports stay correct
    /// without opting in.
    ///
    /// # Errors
    ///
    /// Transport errors, or shard-side rejection of a *malformed* delta
    /// (shape mismatch, bad encoding) — distinct from the clean
    /// `Ok(false)` decline.
    fn prepare_publish_delta(&self, delta: &DeltaPayload) -> Result<bool, ServeError> {
        let _ = delta;
        Ok(false)
    }

    /// Commits the staged snapshot: the shard swaps to `epoch` and serves
    /// it from its next batch. Idempotent when the shard already serves
    /// `epoch` (a retried commit must not fail the publication).
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::InvalidConfig`] when nothing is
    /// staged for `epoch`.
    fn commit_publish(&self, epoch: u64) -> Result<u64, ServeError>;
}

/// The staged-epoch slot shared by [`LocalTransport`] and the HTTP shard
/// endpoints, so the subtle commit rule lives in exactly one place:
/// staging replaces any previous stage (the router serialises
/// publications, so a leftover stage is an aborted one); a commit is
/// idempotent for the epoch already served and consumes the stage only
/// when it matches — in particular, a stale duplicate commit must never
/// discard a snapshot staged for a newer epoch.
#[derive(Debug, Default)]
pub(crate) struct StagedEpoch(Mutex<Option<(u64, InferenceSnapshot)>>);

/// What a commit request should do, per the rule in [`StagedEpoch`].
pub(crate) enum CommitAction {
    /// The shard already serves this epoch; acknowledge without touching
    /// anything (including any newer staged snapshot).
    AlreadyServed,
    /// Publish this snapshot at the committed epoch.
    Publish(InferenceSnapshot),
    /// Nothing is staged for this epoch.
    Missing,
}

impl StagedEpoch {
    pub(crate) fn stage(&self, epoch: u64, snapshot: InferenceSnapshot) {
        // Both critical sections replace or take the whole Option, so a
        // poisoned lock never exposes a torn value — recover from poison.
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = Some((epoch, snapshot));
    }

    pub(crate) fn take_for_commit(&self, epoch: u64, served_epoch: u64) -> CommitAction {
        if served_epoch == epoch {
            return CommitAction::AlreadyServed;
        }
        let mut staged = self.0.lock().unwrap_or_else(|e| e.into_inner());
        match staged.take_if(|(staged_epoch, _)| *staged_epoch == epoch) {
            Some((_, snapshot)) => CommitAction::Publish(snapshot),
            None => CommitAction::Missing,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-replica circuit breaker.
// ---------------------------------------------------------------------------

/// Breaker state: traffic flows normally.
const STATE_CLOSED: u8 = 0;
/// Breaker state: the replica is ejected from routing until its cooldown
/// elapses (then a single probe may half-open it).
const STATE_OPEN: u8 = 1;
/// Breaker state: one probe request is in flight; its outcome closes or
/// re-opens the breaker.
const STATE_HALF_OPEN: u8 = 2;

/// Replica-set tuning for a [`ShardRouter`](crate::ShardRouter): how its
/// per-replica circuit breakers trip and recover, and whether fan-out legs
/// are hedged. The default — no hedging, trip after 3 consecutive
/// transport failures, probe again after 1 s — leaves a single-replica
/// fleet behaving exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Hedge a fan-out leg by submitting to a second replica after this
    /// long without a reply (derive it from the leg's p99; see
    /// `docs/SERVING.md`). `None` disables hedging. Hedging is inert on
    /// single-replica sets.
    pub hedge_delay: Option<Duration>,
    /// Consecutive transport failures that trip a replica's breaker.
    pub failure_threshold: u32,
    /// How long a tripped replica sits out before a single request (or
    /// health probe) may half-open the breaker.
    pub cooldown: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            hedge_delay: None,
            failure_threshold: 3,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// One replica's circuit breaker: consecutive transport failures trip it
/// `STATE_CLOSED` → `STATE_OPEN`; after the cooldown a single request
/// half-opens it (`STATE_HALF_OPEN`) as the probe whose outcome closes
/// or re-trips it. Success from *any* path (traffic, a health probe via
/// the `/healthz` seam) re-admits immediately.
///
/// All state is atomics — no locks — so breaker checks on the fan-out hot
/// path never contend, and every transition bumps a counter (trips,
/// re-admissions, probes) surfaced through `/stats` and `/metrics`; the
/// `breaker-instrumentation` lint rule enforces the latter.
#[derive(Debug)]
pub struct ReplicaBreaker {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    /// When the breaker last opened, in µs since `birth` (an `Instant`
    /// cannot live in an atomic).
    opened_at_us: AtomicU64,
    birth: Instant,
    threshold: u32,
    cooldown: Duration,
    trips: AtomicU64,
    readmits: AtomicU64,
    probes: AtomicU64,
}

impl ReplicaBreaker {
    /// A closed breaker with the given trip threshold and cooldown.
    pub fn new(config: &ReplicaConfig) -> Self {
        ReplicaBreaker {
            state: AtomicU8::new(STATE_CLOSED),
            consecutive_failures: AtomicU32::new(0),
            opened_at_us: AtomicU64::new(0),
            birth: Instant::now(),
            threshold: config.failure_threshold.max(1),
            cooldown: config.cooldown,
            trips: AtomicU64::new(0),
            readmits: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// Whether routing currently admits this replica: closed or half-open,
    /// or open with the cooldown elapsed — in which case the breaker
    /// transitions to half-open and this call admits the probe request.
    pub fn admit(&self) -> bool {
        if self.state.load(Ordering::Acquire) != STATE_OPEN {
            return true;
        }
        let opened = Duration::from_micros(self.opened_at_us.load(Ordering::Acquire));
        if self.birth.elapsed().saturating_sub(opened) < self.cooldown {
            return false;
        }
        let probing = self
            .state
            .compare_exchange(
                STATE_OPEN,
                STATE_HALF_OPEN,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if probing {
            self.probes.fetch_add(1, Ordering::Relaxed);
        }
        // Losing the race means another request became the probe; it is
        // already on its way, so this one stays away until its outcome.
        probing
    }

    /// Whether the breaker is not open (ignoring cooldown) — the
    /// admission flag reported in stats, with no side effects.
    pub fn is_admitted(&self) -> bool {
        self.state.load(Ordering::Acquire) != STATE_OPEN
    }

    /// Records a successful exchange with the replica: resets the failure
    /// run and closes the breaker, counting a re-admission when it was
    /// open or half-open.
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        if self.state.swap(STATE_CLOSED, Ordering::AcqRel) != STATE_CLOSED {
            self.readmits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a transport failure against the replica; trips the breaker
    /// once the consecutive-failure run reaches the threshold (a half-open
    /// probe failure re-trips immediately).
    pub fn record_failure(&self) {
        let run = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let was = self.state.load(Ordering::Acquire);
        let trip = run >= self.threshold || was == STATE_HALF_OPEN;
        if trip && was != STATE_OPEN {
            self.opened_at_us
                .store(self.birth.elapsed().as_micros() as u64, Ordering::Release);
            if self.state.swap(STATE_OPEN, Ordering::AcqRel) != STATE_OPEN {
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        } else if trip {
            // Already open: refresh the cooldown clock so a dead replica
            // is probed once per cooldown, not hammered.
            self.opened_at_us
                .store(self.birth.elapsed().as_micros() as u64, Ordering::Release);
        }
    }

    /// Lifetime trip count.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Lifetime re-admission count (open/half-open → closed).
    pub fn readmits(&self) -> u64 {
        self.readmits.load(Ordering::Relaxed)
    }

    /// Lifetime half-open probe count.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Local transport: in-process TopicServer, PR 4 behaviour bit for bit.
// ---------------------------------------------------------------------------

/// [`ShardTransport`] over an in-process [`TopicServer`] — the fan-out path
/// PR 4 hard-wired, now behind the trait. Submission pushes into the
/// server's bounded queue exactly as before, so sharded answers remain
/// bit-identical to the pre-trait router.
#[derive(Debug)]
pub struct LocalTransport {
    server: TopicServer,
    /// The global word-id range this shard serves, when the builder knows
    /// it (the router's own fleets always do).
    range: Option<Range<u32>>,
    /// The epoch-tagged snapshot staged by [`ShardTransport::prepare_publish`],
    /// waiting for its commit.
    staged: StagedEpoch,
}

impl LocalTransport {
    /// Wraps `server` as a shard transport.
    pub fn new(server: TopicServer) -> Self {
        LocalTransport {
            server,
            range: None,
            staged: StagedEpoch::default(),
        }
    }

    /// Wraps `server` and records the global word-id range it serves
    /// (reported through [`ShardInfo::shard_range`]).
    pub fn with_range(server: TopicServer, range: Range<u32>) -> Self {
        LocalTransport {
            server,
            range: Some(range),
            staged: StagedEpoch::default(),
        }
    }

    /// The wrapped server.
    pub fn server(&self) -> &TopicServer {
        &self.server
    }
}

/// The pending handle of a [`LocalTransport`] submission: the reply channel
/// of the job sitting in the server's queue, plus the timings cell the
/// worker fills for traced requests.
#[derive(Debug)]
pub struct LocalPending {
    rx: Receiver<JobReply>,
    timings: Option<Arc<JobTimings>>,
}

impl LocalPending {
    fn finish(&self, reply: JobReply) -> Result<PartialResponse, ServeError> {
        let mut response = expect_partial(reply)?;
        // The same span subtree a remote shard would ship inline, so the
        // router's stitching is transport-agnostic.
        if let Some(timings) = &self.timings {
            response.spans = partial_spans(timings);
        }
        Ok(response)
    }
}

impl PendingPartial for LocalPending {
    fn wait(self, deadline: Option<Instant>) -> Result<PartialResponse, ServeError> {
        let reply = match deadline {
            None => self.rx.recv().map_err(|_| ServeError::Closed)?,
            Some(at) => {
                let remaining = at
                    .checked_duration_since(Instant::now())
                    .ok_or(ServeError::DeadlineExceeded)?;
                self.rx.recv_timeout(remaining).map_err(|e| match e {
                    RecvTimeoutError::Timeout => ServeError::DeadlineExceeded,
                    RecvTimeoutError::Disconnected => ServeError::Closed,
                })?
            }
        };
        self.finish(reply)
    }

    fn wait_until(self, until: Instant) -> PollOutcome<LocalPending> {
        // A zero-duration recv_timeout still drains an already-arrived
        // reply, so a bound in the past degrades to a non-blocking poll.
        let bound = until.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(bound) {
            Ok(reply) => PollOutcome::Ready(self.finish(reply)),
            Err(RecvTimeoutError::Timeout) => PollOutcome::Pending(self),
            Err(RecvTimeoutError::Disconnected) => PollOutcome::Ready(Err(ServeError::Closed)),
        }
    }
}

impl ShardTransport for LocalTransport {
    type Pending = LocalPending;

    fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Option<Instant>,
        trace: TraceContext,
    ) -> Result<LocalPending, ServeError> {
        let (rx, timings) = if deadline.is_some() {
            self.server.try_submit_partial(words, request, trace)?
        } else {
            self.server.submit_partial(words, request, trace)?
        };
        Ok(LocalPending { rx, timings })
    }

    fn top_words(&self, k: usize, n: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        let snapshot = self.server.snapshot();
        if k >= snapshot.n_topics() {
            return Err(ServeError::BadRequest {
                detail: format!("topic {k} out of range (K = {})", snapshot.n_topics()),
            });
        }
        Ok(snapshot.top_words(k, n))
    }

    fn shard_info(&self) -> Result<ShardInfo, ServeError> {
        let snapshot = self.server.snapshot();
        let vocab_size = snapshot.vocab_size();
        let shard_range = match &self.range {
            Some(range) => (range.start, range.end),
            None => (0, vocab_size as u32),
        };
        Ok(ShardInfo {
            epoch: snapshot.version(),
            vocab_size,
            n_topics: snapshot.n_topics(),
            alpha: snapshot.alpha(),
            shard_range,
            fold_in: self.server.config().fold_in,
            stats: self.server.stats(),
        })
    }

    fn observe_epoch(&self) -> Result<u64, ServeError> {
        Ok(self.server.snapshot_version())
    }

    fn prepare_publish(&self, slice: InferenceSnapshot, epoch: u64) -> Result<(), ServeError> {
        self.staged.stage(epoch, slice);
        Ok(())
    }

    fn prepare_publish_delta(&self, delta: &DeltaPayload) -> Result<bool, ServeError> {
        if self.server.snapshot_version() != delta.base_version {
            return Ok(false);
        }
        let patched =
            self.server
                .snapshot()
                .apply_delta(delta)
                .map_err(|e| ServeError::InvalidConfig {
                    detail: format!("delta does not apply to the served snapshot: {e}"),
                })?;
        self.staged.stage(delta.target_version, patched);
        Ok(true)
    }

    fn commit_publish(&self, epoch: u64) -> Result<u64, ServeError> {
        match self
            .staged
            .take_for_commit(epoch, self.server.snapshot_version())
        {
            CommitAction::AlreadyServed => Ok(epoch),
            CommitAction::Publish(slice) => self.server.publish_at(slice, epoch),
            CommitAction::Missing => Err(ServeError::InvalidConfig {
                detail: format!("no staged snapshot for epoch {epoch}"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP transport: a shard process on the other end of a TCP connection.
// ---------------------------------------------------------------------------

/// Tuning knobs of an [`HttpTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpTransportConfig {
    /// Persistent keep-alive connections to the shard (each owned by one
    /// sender thread); bounds the transport's request concurrency.
    pub connections: usize,
    /// Budget for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per I/O operation; a shard that stops
    /// responding mid-exchange surfaces as a transport error after this
    /// long instead of hanging a router thread.
    pub io_timeout: Duration,
    /// Capacity of the transport's job queue. Deadline-bounded submissions
    /// fail fast with [`ServeError::Overloaded`] when it is full, exactly
    /// like a local server's bounded queue.
    pub queue_depth: usize,
    /// How long control calls (`shard_info`, `top_words`, epoch probes,
    /// commits) wait for their reply before giving up.
    pub control_wait: Duration,
    /// How long a staged-snapshot upload may take; snapshots are the
    /// largest messages on this protocol.
    pub publish_wait: Duration,
}

impl Default for HttpTransportConfig {
    fn default() -> Self {
        HttpTransportConfig {
            connections: 4,
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            queue_depth: 128,
            control_wait: Duration::from_secs(5),
            publish_wait: Duration::from_secs(30),
        }
    }
}

/// Largest HTTP response body the client accepts (a defensive bound; real
/// responses are a few KB).
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// The outcome of one raw HTTP exchange: status + body, or the transport
/// error that prevented it.
type HttpOutcome = Result<(u16, Vec<u8>), ServeError>;

struct HttpJob {
    request: Vec<u8>,
    reply: SyncSender<HttpOutcome>,
}

/// [`ShardTransport`] over the crate's own HTTP/1.1 wire format — the
/// remote half of cross-machine sharding. A small pool of sender threads
/// holds persistent connections to the shard process; requests are
/// serialised by [`crate::wire`] codecs whose `f64` round trip is exact,
/// so remote merges match local ones bit for bit.
///
/// The shard on the other end is any [`crate::HttpServer`] fronting a
/// [`TopicServer`] — typically one started by the `saber_shardd` example
/// or your own process that loads an [`InferenceSnapshot`] from disk.
pub struct HttpTransport {
    addr: SocketAddr,
    queue: Option<SyncSender<HttpJob>>,
    senders: Vec<JoinHandle<()>>,
    config: HttpTransportConfig,
}

impl std::fmt::Debug for HttpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpTransport")
            .field("addr", &self.addr)
            .field("connections", &self.config.connections)
            .finish()
    }
}

impl HttpTransport {
    /// Creates a transport to the shard at `addr` with default tuning.
    /// Connections are established lazily (and re-established after
    /// errors), so this does not require the shard to be up yet.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `addr` does not resolve.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        HttpTransport::connect_with(addr, HttpTransportConfig::default())
    }

    /// [`HttpTransport::connect`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `addr` does not resolve
    /// or `config.connections`/`queue_depth` is zero.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: HttpTransportConfig,
    ) -> Result<Self, ServeError> {
        if config.connections == 0 || config.queue_depth == 0 {
            return Err(ServeError::InvalidConfig {
                detail: "transport connections and queue_depth must be at least 1".into(),
            });
        }
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ServeError::InvalidConfig {
                detail: format!("shard address does not resolve: {e}"),
            })?
            .next()
            .ok_or_else(|| ServeError::InvalidConfig {
                detail: "shard address resolves to nothing".into(),
            })?;
        let (tx, rx) = sync_channel::<HttpJob>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let senders = (0..config.connections)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("saber-shard-tx-{i}"))
                    .spawn(move || sender_loop(&rx, addr, config))
                    .map_err(|e| ServeError::Internal {
                        detail: format!("failed to spawn shard transport sender: {e}"),
                    })
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(HttpTransport {
            addr,
            queue: Some(tx),
            senders,
            config,
        })
    }

    /// The resolved shard address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Builds one HTTP/1.1 request as bytes (keep-alive implied). An
    /// enabled `trace` context rides along as the `X-Saber-Trace` header
    /// (`<trace-id>-<parent-span-id>`, both 16 hex digits), which is how a
    /// trace crosses the machine boundary to a shard process.
    fn request_bytes(
        method: &str,
        path: &str,
        content_type: &str,
        body: &[u8],
        epoch: Option<u64>,
        trace: Option<&TraceContext>,
    ) -> Vec<u8> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: shard\r\nContent-Length: {}\r\n",
            body.len()
        );
        if !body.is_empty() {
            head.push_str(&format!("Content-Type: {content_type}\r\n"));
        }
        if let Some(epoch) = epoch {
            head.push_str(&format!("X-Saber-Epoch: {epoch}\r\n"));
        }
        if let Some(value) = trace.and_then(TraceContext::header_value) {
            head.push_str(&format!("X-Saber-Trace: {value}\r\n"));
        }
        head.push_str("\r\n");
        let mut request = head.into_bytes();
        request.extend_from_slice(body);
        request
    }

    /// Enqueues a request without waiting (the fan-out path).
    fn enqueue(
        &self,
        request: Vec<u8>,
        fail_fast: bool,
    ) -> Result<Receiver<HttpOutcome>, ServeError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = HttpJob {
            request,
            reply: reply_tx,
        };
        let queue = self.queue.as_ref().ok_or(ServeError::Closed)?;
        if fail_fast {
            match queue.try_send(job) {
                Ok(()) => Ok(reply_rx),
                Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
                Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
            }
        } else {
            queue.send(job).map_err(|_| ServeError::Closed)?;
            Ok(reply_rx)
        }
    }

    /// Round-trips one request synchronously with a bounded wait (the
    /// control path: info, stats, publication).
    fn call(&self, request: Vec<u8>, wait: Duration) -> Result<(u16, Vec<u8>), ServeError> {
        let rx = self.enqueue(request, false)?;
        match rx.recv_timeout(wait) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }
}

impl Drop for HttpTransport {
    fn drop(&mut self) {
        self.queue = None;
        for sender in self.senders.drain(..) {
            let _ = sender.join();
        }
    }
}

/// The pending handle of an [`HttpTransport`] submission.
#[derive(Debug)]
pub struct HttpPending(Receiver<HttpOutcome>);

impl PendingPartial for HttpPending {
    fn wait(self, deadline: Option<Instant>) -> Result<PartialResponse, ServeError> {
        let outcome = match deadline {
            None => self.0.recv().map_err(|_| ServeError::Closed)?,
            Some(at) => {
                let remaining = at
                    .checked_duration_since(Instant::now())
                    .ok_or(ServeError::DeadlineExceeded)?;
                self.0.recv_timeout(remaining).map_err(|e| match e {
                    RecvTimeoutError::Timeout => ServeError::DeadlineExceeded,
                    RecvTimeoutError::Disconnected => ServeError::Closed,
                })?
            }
        };
        let (status, body) = outcome?;
        decode_body(status, &body, wire::decode_partial_response)
    }

    fn wait_until(self, until: Instant) -> PollOutcome<HttpPending> {
        let bound = until.saturating_duration_since(Instant::now());
        match self.0.recv_timeout(bound) {
            Ok(outcome) => PollOutcome::Ready(outcome.and_then(|(status, body)| {
                decode_body(status, &body, wire::decode_partial_response)
            })),
            Err(RecvTimeoutError::Timeout) => PollOutcome::Pending(self),
            Err(RecvTimeoutError::Disconnected) => PollOutcome::Ready(Err(ServeError::Closed)),
        }
    }
}

/// Parses a 200 body with `decode`, or maps the shard's error status onto
/// the [`ServeError`] it encodes.
fn decode_body<T>(
    status: u16,
    body: &[u8],
    decode: impl FnOnce(&str) -> Result<T, wire::WireError>,
) -> Result<T, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::transport("shard response is not valid UTF-8"))?;
    if status == 200 {
        decode(text).map_err(|e| ServeError::transport(format!("malformed shard response: {e}")))
    } else {
        Err(wire::decode_serve_error(status, text))
    }
}

impl ShardTransport for HttpTransport {
    type Pending = HttpPending;

    fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Option<Instant>,
        trace: TraceContext,
    ) -> Result<HttpPending, ServeError> {
        let body = wire::encode_partial_request(&words, &request).to_string();
        let request = Self::request_bytes(
            "POST",
            "/infer-partial",
            "application/json",
            body.as_bytes(),
            None,
            Some(&trace),
        );
        Ok(HttpPending(self.enqueue(request, deadline.is_some())?))
    }

    fn top_words(&self, k: usize, n: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        let request = Self::request_bytes(
            "GET",
            &format!("/top-words?topic={k}&n={n}"),
            "application/json",
            &[],
            None,
            None,
        );
        let (status, body) = self.call(request, self.config.control_wait)?;
        decode_body(status, &body, wire::decode_top_words)
    }

    fn shard_info(&self) -> Result<ShardInfo, ServeError> {
        let request =
            Self::request_bytes("GET", "/shard-info", "application/json", &[], None, None);
        let (status, body) = self.call(request, self.config.control_wait)?;
        decode_body(status, &body, wire::decode_shard_info)
    }

    fn observe_epoch(&self) -> Result<u64, ServeError> {
        let request = Self::request_bytes("GET", "/healthz", "application/json", &[], None, None);
        let (status, body) = self.call(request, self.config.control_wait)?;
        decode_body(status, &body, wire::decode_healthz_version)
    }

    fn prepare_publish(&self, slice: InferenceSnapshot, epoch: u64) -> Result<(), ServeError> {
        let mut body = Vec::new();
        slice.save(&mut body).map_err(|e| {
            ServeError::transport(format!("failed to serialise snapshot slice: {e}"))
        })?;
        let request = Self::request_bytes(
            "POST",
            "/publish-shard",
            "application/octet-stream",
            &body,
            Some(epoch),
            None,
        );
        let (status, body) = self.call(request, self.config.publish_wait)?;
        decode_body(status, &body, |_| Ok(()))
    }

    fn prepare_publish_delta(&self, delta: &DeltaPayload) -> Result<bool, ServeError> {
        let mut body = Vec::new();
        save_delta(delta, &mut body).map_err(|e| {
            ServeError::transport(format!("failed to serialise snapshot delta: {e}"))
        })?;
        let request = Self::request_bytes(
            "POST",
            "/publish-delta",
            "application/octet-stream",
            &body,
            Some(delta.target_version),
            None,
        );
        let (status, body) = self.call(request, self.config.publish_wait)?;
        if status == 409 {
            // The shard declined — its served version is not the delta's
            // base (or the target is behind). Not an error: the caller
            // falls back to a full publication of the same epoch.
            return Ok(false);
        }
        decode_body(status, &body, |_| Ok(()))?;
        Ok(true)
    }

    fn commit_publish(&self, epoch: u64) -> Result<u64, ServeError> {
        let body = format!("{{\"epoch\":{epoch}}}");
        // The epoch also rides the X-Saber-Epoch header so the shard can
        // verify the commit names the epoch it actually has staged.
        let request = Self::request_bytes(
            "POST",
            "/commit-epoch",
            "application/json",
            body.as_bytes(),
            Some(epoch),
            None,
        );
        let (status, body) = self.call(request, self.config.control_wait)?;
        decode_body(status, &body, wire::decode_healthz_version)?;
        Ok(epoch)
    }
}

/// One sender thread: owns (at most) one keep-alive connection, drains the
/// shared job queue, and reconnects on I/O failure — retrying the in-hand
/// request once on a fresh connection, since every message on this
/// protocol is safe to replay (partials are pure computation, staging and
/// commits are idempotent).
fn sender_loop(rx: &Mutex<Receiver<HttpJob>>, addr: SocketAddr, config: HttpTransportConfig) {
    let mut connection: Option<BufReader<TcpStream>> = None;
    loop {
        let job = {
            // Sender threads never panic holding this lock; recover from
            // poison rather than wedging every remaining sender.
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        let mut result = exchange(&mut connection, addr, &config, &job.request);
        if result.is_err() {
            // The keep-alive connection may simply have been closed by the
            // shard between requests; one fresh-connection retry
            // distinguishes that from a shard that is actually down.
            connection = None;
            result = exchange(&mut connection, addr, &config, &job.request);
            if result.is_err() {
                connection = None;
            }
        }
        // A send fails only when the requester stopped waiting; fine.
        let _ = job.reply.send(result);
    }
}

/// Writes one request and reads one response over the (re)used connection.
fn exchange(
    connection: &mut Option<BufReader<TcpStream>>,
    addr: SocketAddr,
    config: &HttpTransportConfig,
    request: &[u8],
) -> Result<(u16, Vec<u8>), ServeError> {
    // Every I/O failure names the peer it happened against, so a router's
    // 502 can attribute the fan-out leg that broke.
    let transport_err = |detail: String| ServeError::Transport {
        detail,
        shard: None,
        addr: Some(addr.to_string()),
    };
    let reader = match connection {
        Some(reader) => reader,
        None => {
            let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)
                .map_err(|e| transport_err(format!("cannot connect to shard: {e}")))?;
            let _ = stream.set_read_timeout(Some(config.io_timeout));
            let _ = stream.set_write_timeout(Some(config.io_timeout));
            let _ = stream.set_nodelay(true);
            connection.insert(BufReader::new(stream))
        }
    };
    reader
        .get_mut()
        .write_all(request)
        .and_then(|_| reader.get_mut().flush())
        .map_err(|e| transport_err(format!("write to shard failed: {e}")))?;
    read_response(reader).map_err(|e| transport_err(format!("read from shard failed: {e}")))
}

/// Reads one `Content-Length`-framed HTTP/1.1 response.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, Vec<u8>)> {
    use std::io::{Error, ErrorKind};
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(Error::new(ErrorKind::UnexpectedEof, "connection closed"));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(Error::new(ErrorKind::UnexpectedEof, "EOF in headers"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Error::new(ErrorKind::InvalidData, "bad content-length"))?;
            }
        }
    }
    if content_length > MAX_RESPONSE_BYTES {
        return Err(Error::new(ErrorKind::InvalidData, "response too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests::planted_model;
    use crate::snapshot::SnapshotSampler;
    use crate::ServeConfig;

    fn transport() -> LocalTransport {
        let server =
            TopicServer::from_model(&planted_model(12, 3), ServeConfig::default()).unwrap();
        LocalTransport::with_range(server, 0..12)
    }

    #[test]
    fn local_transport_reports_shard_info() {
        let transport = transport();
        let info = transport.shard_info().unwrap();
        assert_eq!(info.epoch, 1);
        assert_eq!(info.vocab_size, 12);
        assert_eq!(info.n_topics, 3);
        assert_eq!(info.shard_range, (0, 12));
        assert_eq!(info.fold_in, ServeConfig::default().fold_in);
        assert_eq!(info.stats.requests, 0);
        assert_eq!(transport.observe_epoch().unwrap(), 1);
    }

    #[test]
    fn local_submit_and_wait_round_trip() {
        let transport = transport();
        let pending = transport
            .submit_partial(
                vec![0, 3, 6],
                PartialRequest::FoldIn { seed: 4 },
                None,
                TraceContext::disabled(),
            )
            .unwrap();
        let response = pending.wait(None).unwrap();
        assert_eq!(response.snapshot_version, 1);
        assert_eq!(response.partial.n_words, 3);
        assert!(
            response.spans.is_empty(),
            "untraced requests carry no spans"
        );
    }

    #[test]
    fn local_traced_submission_yields_the_shard_span_subtree() {
        let transport = transport();
        let id = saber_trace::TraceId::mint();
        let pending = transport
            .submit_partial(
                vec![0, 3, 6],
                PartialRequest::FoldIn { seed: 4 },
                None,
                TraceContext::root(id),
            )
            .unwrap();
        let traced = pending.wait(None).unwrap();
        assert_eq!(traced.spans.len(), 3);
        assert_eq!(traced.spans[0].name, "infer-partial");
        assert_eq!(traced.spans[0].parent, None);
        // Tracing must not perturb the computation itself.
        let untraced = transport
            .submit_partial(
                vec![0, 3, 6],
                PartialRequest::FoldIn { seed: 4 },
                None,
                TraceContext::disabled(),
            )
            .unwrap()
            .wait(None)
            .unwrap();
        assert_eq!(traced.partial, untraced.partial);
    }

    #[test]
    fn request_bytes_carry_the_trace_header_only_when_enabled() {
        let id = saber_trace::TraceId::from_raw(0xABCD).unwrap();
        let ctx = TraceContext::child(id, 7);
        let with = HttpTransport::request_bytes(
            "POST",
            "/infer-partial",
            "application/json",
            b"{}",
            None,
            Some(&ctx),
        );
        let text = String::from_utf8(with).unwrap();
        assert!(
            text.contains("X-Saber-Trace: 000000000000abcd-0000000000000007\r\n"),
            "request was: {text}"
        );
        let without = HttpTransport::request_bytes(
            "POST",
            "/infer-partial",
            "application/json",
            b"{}",
            None,
            Some(&TraceContext::disabled()),
        );
        assert!(!String::from_utf8(without)
            .unwrap()
            .contains("X-Saber-Trace"));
    }

    #[test]
    fn local_prepare_commit_swaps_on_commit_only() {
        let transport = transport();
        let slice = InferenceSnapshot::from_model(&planted_model(12, 3), SnapshotSampler::WaryTree);
        transport.prepare_publish(slice, 2).unwrap();
        assert_eq!(
            transport.observe_epoch().unwrap(),
            1,
            "staging must not swap"
        );
        assert_eq!(transport.commit_publish(2).unwrap(), 2);
        assert_eq!(transport.observe_epoch().unwrap(), 2);
        // Re-committing the served epoch is idempotent…
        assert_eq!(transport.commit_publish(2).unwrap(), 2);
        // …but committing an epoch that was never staged fails.
        assert!(matches!(
            transport.commit_publish(5),
            Err(ServeError::InvalidConfig { .. })
        ));
        // A delayed duplicate commit of the served epoch must NOT consume
        // a snapshot already staged for the next one.
        let next = InferenceSnapshot::from_model(&planted_model(12, 3), SnapshotSampler::WaryTree);
        transport.prepare_publish(next, 3).unwrap();
        assert_eq!(transport.commit_publish(2).unwrap(), 2, "stale duplicate");
        assert_eq!(
            transport.commit_publish(3).unwrap(),
            3,
            "the staged epoch-3 snapshot must survive the stale commit"
        );
        assert_eq!(transport.observe_epoch().unwrap(), 3);
    }

    #[test]
    fn local_delta_staging_applies_over_a_matching_base_and_declines_otherwise() {
        let transport = transport();
        let mut model = planted_model(12, 3);
        model.word_topic_mut()[(4, 1)] += 6;
        model.refresh_probabilities();
        let next = InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree);
        let changed: Vec<u32> = (0..12).collect();
        // Base 1 matches the freshly-started server's version.
        let delta = next.shard_delta(0..12, &changed, 1, 2);
        assert!(transport.prepare_publish_delta(&delta).unwrap());
        assert_eq!(
            transport.observe_epoch().unwrap(),
            1,
            "staging must not swap"
        );
        assert_eq!(transport.commit_publish(2).unwrap(), 2);
        assert_eq!(transport.observe_epoch().unwrap(), 2);
        // The patched snapshot serves the new model's bits.
        let info = transport.shard_info().unwrap();
        assert_eq!(info.epoch, 2);
        // A delta whose base is no longer served is declined, not applied.
        let stale = next.shard_delta(0..12, &changed, 1, 3);
        assert!(!transport.prepare_publish_delta(&stale).unwrap());
        // A delta with the wrong shape is a hard error.
        let misshapen =
            InferenceSnapshot::from_model(&planted_model(6, 3), SnapshotSampler::WaryTree)
                .shard_delta(0..6, &[0, 2], 2, 3);
        assert!(transport.prepare_publish_delta(&misshapen).is_err());
    }

    #[test]
    fn commit_request_carries_the_epoch_header() {
        let request = HttpTransport::request_bytes(
            "POST",
            "/commit-epoch",
            "application/json",
            b"{\"epoch\":7}",
            Some(7),
            None,
        );
        let text = String::from_utf8(request).unwrap();
        assert!(text.contains("X-Saber-Epoch: 7\r\n"), "request was: {text}");
    }

    #[test]
    fn breaker_trips_after_threshold_and_readmits_on_success() {
        let config = ReplicaConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(0),
            ..ReplicaConfig::default()
        };
        let breaker = ReplicaBreaker::new(&config);
        assert!(breaker.admit() && breaker.is_admitted());
        breaker.record_failure();
        breaker.record_failure();
        assert!(breaker.is_admitted(), "below threshold");
        breaker.record_failure();
        assert!(!breaker.is_admitted());
        assert_eq!(breaker.trips(), 1);
        // Zero cooldown: the next admission is the half-open probe.
        assert!(breaker.admit());
        assert_eq!(breaker.probes(), 1);
        // A failed probe re-trips immediately…
        breaker.record_failure();
        assert!(!breaker.is_admitted());
        assert_eq!(breaker.trips(), 2);
        // …and a successful one re-admits.
        assert!(breaker.admit());
        breaker.record_success();
        assert!(breaker.is_admitted());
        assert_eq!(breaker.readmits(), 1);
    }

    #[test]
    fn open_breaker_rejects_until_cooldown() {
        let config = ReplicaConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
            ..ReplicaConfig::default()
        };
        let breaker = ReplicaBreaker::new(&config);
        breaker.record_failure();
        assert!(!breaker.is_admitted());
        assert!(!breaker.admit(), "cooldown is far in the future");
        assert_eq!(breaker.probes(), 0);
    }

    #[test]
    fn wait_until_hands_the_pending_handle_back() {
        let transport = transport();
        let mut pending = transport
            .submit_partial(
                vec![0, 3, 6],
                PartialRequest::FoldIn { seed: 4 },
                None,
                TraceContext::disabled(),
            )
            .unwrap();
        let give_up = Instant::now() + Duration::from_secs(5);
        let response = loop {
            match pending.wait_until(Instant::now() + Duration::from_millis(1)) {
                PollOutcome::Ready(r) => break r.unwrap(),
                PollOutcome::Pending(p) => {
                    assert!(Instant::now() < give_up, "shard never answered");
                    pending = p;
                }
            }
        };
        assert_eq!(response.partial.n_words, 3);
        assert_eq!(response.snapshot_version, 1);
    }

    #[test]
    fn http_transport_rejects_unresolvable_addresses() {
        assert!(matches!(
            HttpTransport::connect("definitely-not-a-host.invalid:80"),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            HttpTransport::connect_with(
                "127.0.0.1:1",
                HttpTransportConfig {
                    connections: 0,
                    ..HttpTransportConfig::default()
                }
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn http_transport_surfaces_unreachable_shards_as_transport_errors() {
        // Port 1 on loopback is essentially never listening; the control
        // call must fail with a transport error, not hang.
        let transport = HttpTransport::connect_with(
            "127.0.0.1:1",
            HttpTransportConfig {
                connections: 1,
                connect_timeout: Duration::from_millis(200),
                control_wait: Duration::from_secs(2),
                ..HttpTransportConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            transport.observe_epoch(),
            Err(ServeError::Transport { .. })
        ));
    }
}
