//! The JSON wire protocol spoken by the HTTP front-end.
//!
//! This module is the pure codec layer between [`crate::http`] and the rest
//! of the crate: request bodies in, response bodies out, no sockets. Keeping
//! it free of I/O makes every message shape unit-testable and keeps
//! `http.rs` focused on transport concerns (framing, timeouts,
//! backpressure). The JSON values themselves come from the dependency-free
//! [`saber_core::json`] codec.
//!
//! The full request/response reference, with `curl` examples, lives in
//! `docs/SERVING.md`.
//!
//! # Example
//!
//! ```
//! use saber_serve::wire::{decode_infer, InferBody};
//!
//! let wire = decode_infer(r#"{"words": [0, 2, 4], "seed": 7}"#).unwrap();
//! assert_eq!(wire.seed, Some(7));
//! assert!(matches!(wire.body, InferBody::Words(ref w) if w == &[0, 2, 4]));
//!
//! let raw = decode_infer(r#"{"tokens": ["dog", "cat"], "oov": "skip"}"#).unwrap();
//! assert_eq!(raw.seed, None);
//! assert!(matches!(raw.body, InferBody::Tokens { .. }));
//! ```

use saber_core::json::{self, JsonValue};
use saber_corpus::{OovPolicy, Vocabulary};

use crate::http::HttpStats;
use crate::server::{InferResponse, ServeStats};
use crate::stats::HistogramSnapshot;

/// A malformed request body or query string; the HTTP layer answers `400`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description, echoed to the client.
    pub detail: String,
}

impl WireError {
    fn new(detail: impl Into<String>) -> Self {
        WireError {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for WireError {}

impl From<json::JsonError> for WireError {
    fn from(e: json::JsonError) -> Self {
        WireError::new(e.to_string())
    }
}

/// The document payload of a `POST /infer` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferBody {
    /// Pre-encoded vocabulary word ids (`"words": [0, 2, 4]`).
    Words(Vec<u32>),
    /// Raw tokens to encode server-side (`"tokens": ["dog", "cat"]`), with
    /// the out-of-vocabulary policy from the `"oov"` member
    /// (`"skip"`, the default, or `"fail"`).
    Tokens {
        /// The raw tokens.
        tokens: Vec<String>,
        /// How to treat tokens outside the served vocabulary.
        policy: OovPolicy,
    },
}

/// A decoded `POST /infer` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferWire {
    /// The document.
    pub body: InferBody,
    /// The `"seed"` member, if present (the `X-Saber-Seed` header, handled
    /// by the HTTP layer, takes precedence).
    pub seed: Option<u64>,
}

/// Decodes a `POST /infer` JSON body.
///
/// # Errors
///
/// Returns [`WireError`] for invalid JSON, a body that has neither `words`
/// nor `tokens` (or both), word ids outside `u32`, or an unknown `oov`
/// policy.
pub fn decode_infer(body: &str) -> Result<InferWire, WireError> {
    let value = json::parse(body)?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(WireError::new("request body must be a JSON object"));
    }
    let seed = match value.get("seed") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| WireError::new("'seed' must be an unsigned 64-bit integer"))?,
        ),
    };
    let body = match (value.get("words"), value.get("tokens")) {
        (Some(words), None) => InferBody::Words(decode_word_ids(words)?),
        (None, Some(tokens)) => {
            let tokens = tokens
                .as_array()
                .ok_or_else(|| WireError::new("'tokens' must be an array of strings"))?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| WireError::new("'tokens' must be an array of strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let policy = match value.get("oov") {
                None | Some(JsonValue::Null) => OovPolicy::Skip,
                Some(v) => match v.as_str() {
                    Some("skip") => OovPolicy::Skip,
                    Some("fail") => OovPolicy::Fail,
                    _ => return Err(WireError::new("'oov' must be \"skip\" or \"fail\"")),
                },
            };
            InferBody::Tokens { tokens, policy }
        }
        (Some(_), Some(_)) => {
            return Err(WireError::new(
                "request must carry 'words' or 'tokens', not both",
            ))
        }
        (None, None) => {
            return Err(WireError::new(
                "request must carry a 'words' (word ids) or 'tokens' (raw strings) array",
            ))
        }
    };
    Ok(InferWire { body, seed })
}

fn decode_word_ids(value: &JsonValue) -> Result<Vec<u32>, WireError> {
    value
        .as_array()
        .ok_or_else(|| WireError::new("'words' must be an array of word ids"))?
        .iter()
        .map(|w| {
            w.as_u64()
                .filter(|&id| id <= u64::from(u32::MAX))
                .map(|id| id as u32)
                .ok_or_else(|| WireError::new("word ids must be unsigned 32-bit integers"))
        })
        .collect()
}

/// Parses a comma-separated word-id list from a query-string value
/// (`a=1,2,3` on `GET /similar`).
///
/// # Errors
///
/// Returns [`WireError`] when any element is not an unsigned 32-bit integer.
pub fn parse_id_list(raw: &str) -> Result<Vec<u32>, WireError> {
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|part| {
            part.trim()
                .parse::<u32>()
                .map_err(|_| WireError::new(format!("'{part}' is not an unsigned word id")))
        })
        .collect()
}

/// Encodes an [`InferResponse`], echoing the seed that produced it so the
/// client can replay the request bit-identically.
pub fn encode_infer_response(response: &InferResponse, seed: u64) -> JsonValue {
    JsonValue::object([
        ("theta", JsonValue::f32_array(&response.theta)),
        ("dominant_topic", JsonValue::from(response.dominant_topic())),
        (
            "snapshot_version",
            JsonValue::from(response.snapshot_version),
        ),
        ("n_oov", JsonValue::from(response.n_oov)),
        ("seed", JsonValue::from(seed)),
    ])
}

/// Encodes a `GET /top-words` response; word ids are resolved to strings
/// when the server has a vocabulary attached.
pub fn encode_top_words(topic: usize, top: &[(u32, f32)], vocab: Option<&Vocabulary>) -> JsonValue {
    let words = top
        .iter()
        .map(|&(word, prob)| {
            let mut pairs = vec![
                ("word", JsonValue::from(u64::from(word))),
                ("prob", JsonValue::Number(f64::from(prob))),
            ];
            if let Some(token) = vocab.and_then(|v| v.word(word)) {
                pairs.push(("token", JsonValue::from(token)));
            }
            JsonValue::object(pairs)
        })
        .collect();
    JsonValue::object([
        ("topic", JsonValue::from(topic)),
        ("words", JsonValue::Array(words)),
    ])
}

/// Encodes a `GET /similar` response: both distance measures plus the
/// per-document θ metadata needed to interpret them.
pub fn encode_similar(
    a: &InferResponse,
    b: &InferResponse,
    hellinger: f32,
    cosine: f32,
    seed: u64,
) -> JsonValue {
    JsonValue::object([
        ("hellinger", JsonValue::Number(f64::from(hellinger))),
        ("cosine", JsonValue::Number(f64::from(cosine))),
        ("dominant_topic_a", JsonValue::from(a.dominant_topic())),
        ("dominant_topic_b", JsonValue::from(b.dominant_topic())),
        ("snapshot_version", JsonValue::from(a.snapshot_version)),
        ("seed", JsonValue::from(seed)),
    ])
}

/// Encodes a latency histogram as `{count, mean_us, p50_us, p95_us, p99_us}`
/// (quantiles are `null` until the first sample).
pub fn encode_histogram(h: &HistogramSnapshot) -> JsonValue {
    fn quantile(v: Option<f64>) -> JsonValue {
        v.map(JsonValue::Number).unwrap_or(JsonValue::Null)
    }
    JsonValue::object([
        ("count", JsonValue::from(h.count())),
        ("mean_us", quantile(h.mean_micros())),
        ("p50_us", quantile(h.p50())),
        ("p95_us", quantile(h.p95())),
        ("p99_us", quantile(h.p99())),
    ])
}

/// Encodes the full `GET /stats` response body: the (shard-aggregated)
/// serving counters plus the HTTP layer's per-endpoint histograms.
///
/// Pure — all inputs are point-in-time copies — so the exact bytes are
/// pinned by the golden wire-format tests: reordering or renaming members
/// is a breaking protocol change and fails `tests/wire_golden.rs`.
pub fn encode_stats_body(
    server: &ServeStats,
    snapshot_version: u64,
    n_shards: usize,
    http: &HttpStats,
) -> JsonValue {
    JsonValue::object([
        (
            "server",
            JsonValue::object([
                ("requests", JsonValue::from(server.requests)),
                ("tokens", JsonValue::from(server.tokens)),
                ("batches", JsonValue::from(server.batches)),
                ("swaps_observed", JsonValue::from(server.swaps_observed)),
                (
                    "mean_batch_size",
                    JsonValue::Number(server.mean_batch_size()),
                ),
                ("snapshot_version", JsonValue::from(snapshot_version)),
                ("shards", JsonValue::from(n_shards)),
                ("latency", encode_histogram(&server.latency)),
            ]),
        ),
        (
            "http",
            JsonValue::object([
                ("requests", JsonValue::from(http.requests)),
                ("errors", JsonValue::from(http.errors)),
                (
                    "active_connections",
                    JsonValue::from(http.active_connections),
                ),
                (
                    "endpoints",
                    JsonValue::object([
                        ("infer", encode_histogram(&http.infer)),
                        ("top_words", encode_histogram(&http.top_words)),
                        ("similar", encode_histogram(&http.similar)),
                        ("stats", encode_histogram(&http.stats)),
                        ("healthz", encode_histogram(&http.healthz)),
                    ]),
                ),
            ]),
        ),
    ])
}

/// Encodes an error body: `{"error": detail, "status": status}`.
pub fn encode_error(status: u16, detail: &str) -> JsonValue {
    JsonValue::object([
        ("error", JsonValue::from(detail)),
        ("status", JsonValue::from(u64::from(status))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_word_id_bodies() {
        let wire = decode_infer(r#"{"words":[1,2,3],"seed":9}"#).unwrap();
        assert_eq!(wire.body, InferBody::Words(vec![1, 2, 3]));
        assert_eq!(wire.seed, Some(9));
        let no_seed = decode_infer(r#"{"words":[]}"#).unwrap();
        assert_eq!(no_seed.seed, None);
        assert_eq!(no_seed.body, InferBody::Words(vec![]));
    }

    #[test]
    fn decodes_raw_token_bodies_with_policy() {
        let wire = decode_infer(r#"{"tokens":["a","b"],"oov":"fail","seed":1}"#).unwrap();
        assert_eq!(
            wire.body,
            InferBody::Tokens {
                tokens: vec!["a".into(), "b".into()],
                policy: OovPolicy::Fail,
            }
        );
        let default_policy = decode_infer(r#"{"tokens":["a"]}"#).unwrap();
        assert!(matches!(
            default_policy.body,
            InferBody::Tokens {
                policy: OovPolicy::Skip,
                ..
            }
        ));
    }

    #[test]
    fn seeds_above_2_pow_53_survive() {
        let seed = u64::MAX - 1;
        let wire = decode_infer(&format!(r#"{{"words":[0],"seed":{seed}}}"#)).unwrap();
        assert_eq!(wire.seed, Some(seed));
    }

    #[test]
    fn rejects_malformed_bodies() {
        for body in [
            "",
            "[]",
            "{}",
            r#"{"words":[1],"tokens":["a"]}"#,
            r#"{"words":"nope"}"#,
            r#"{"words":[-1]}"#,
            r#"{"words":[4294967296]}"#,
            r#"{"words":[0.5]}"#,
            r#"{"tokens":[1]}"#,
            r#"{"tokens":["a"],"oov":"explode"}"#,
            r#"{"words":[1],"seed":-3}"#,
        ] {
            assert!(decode_infer(body).is_err(), "{body:?} must be rejected");
        }
    }

    #[test]
    fn id_list_parsing() {
        assert_eq!(parse_id_list("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_id_list("7").unwrap(), vec![7]);
        assert_eq!(parse_id_list("").unwrap(), Vec::<u32>::new());
        assert!(parse_id_list("1,x").is_err());
        assert!(parse_id_list("-1").is_err());
    }

    #[test]
    fn response_encoding_has_stable_members() {
        let response = InferResponse {
            theta: vec![0.75, 0.25],
            snapshot_version: 3,
            n_oov: 1,
        };
        let encoded = encode_infer_response(&response, 42);
        assert_eq!(encoded.get("dominant_topic").unwrap().as_u64(), Some(0));
        assert_eq!(encoded.get("snapshot_version").unwrap().as_u64(), Some(3));
        assert_eq!(encoded.get("n_oov").unwrap().as_u64(), Some(1));
        assert_eq!(encoded.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(encoded.get("theta").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn top_words_resolve_tokens_when_vocab_present() {
        let vocab = Vocabulary::synthetic(4);
        let encoded = encode_top_words(1, &[(0, 0.5), (3, 0.25)], Some(&vocab));
        let words = encoded.get("words").unwrap().as_array().unwrap();
        assert_eq!(words[0].get("token").unwrap().as_str(), Some("w00000"));
        let anonymous = encode_top_words(1, &[(0, 0.5)], None);
        let words = anonymous.get("words").unwrap().as_array().unwrap();
        assert!(words[0].get("token").is_none());
    }

    #[test]
    fn error_and_histogram_encoding() {
        let err = encode_error(429, "queue full");
        assert_eq!(err.get("status").unwrap().as_u64(), Some(429));
        assert_eq!(err.get("error").unwrap().as_str(), Some("queue full"));
        let empty = encode_histogram(&HistogramSnapshot::default());
        assert_eq!(empty.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(empty.get("p99_us"), Some(&JsonValue::Null));
    }
}
