//! The JSON wire protocol spoken by the HTTP front-end.
//!
//! This module is the pure codec layer between [`crate::http`] and the rest
//! of the crate: request bodies in, response bodies out, no sockets. Keeping
//! it free of I/O makes every message shape unit-testable and keeps
//! `http.rs` focused on transport concerns (framing, timeouts,
//! backpressure). The JSON values themselves come from the dependency-free
//! [`saber_core::json`] codec.
//!
//! The full request/response reference, with `curl` examples, lives in
//! `docs/SERVING.md`.
//!
//! # Example
//!
//! ```
//! use saber_serve::wire::{decode_infer, InferBody};
//!
//! let wire = decode_infer(r#"{"words": [0, 2, 4], "seed": 7}"#).unwrap();
//! assert_eq!(wire.seed, Some(7));
//! assert!(matches!(wire.body, InferBody::Words(ref w) if w == &[0, 2, 4]));
//!
//! let raw = decode_infer(r#"{"tokens": ["dog", "cat"], "oov": "skip"}"#).unwrap();
//! assert_eq!(raw.seed, None);
//! assert!(matches!(raw.body, InferBody::Tokens { .. }));
//! ```

use std::sync::Arc;

use saber_core::infer::PartialFoldIn;
use saber_core::json::{self, JsonValue};
use saber_corpus::{OovPolicy, Vocabulary};
use saber_trace::{SpanEvent, SpanRecord, Trace, TraceId};

use crate::http::{EndpointStats, HttpStats};
use crate::router::RouterStats;
use crate::server::{InferResponse, PartialRequest, PartialResponse, ServeStats};
use crate::snapshot::{FoldInKind, FoldInParams};
use crate::stats::{HistogramSnapshot, N_BUCKETS};
use crate::transport::ShardInfo;
use crate::ServeError;

/// A malformed request body or query string; the HTTP layer answers `400`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description, echoed to the client.
    pub detail: String,
}

impl WireError {
    fn new(detail: impl Into<String>) -> Self {
        WireError {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for WireError {}

impl From<json::JsonError> for WireError {
    fn from(e: json::JsonError) -> Self {
        WireError::new(e.to_string())
    }
}

/// The document payload of a `POST /infer` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferBody {
    /// Pre-encoded vocabulary word ids (`"words": [0, 2, 4]`).
    Words(Vec<u32>),
    /// Raw tokens to encode server-side (`"tokens": ["dog", "cat"]`), with
    /// the out-of-vocabulary policy from the `"oov"` member
    /// (`"skip"`, the default, or `"fail"`).
    Tokens {
        /// The raw tokens.
        tokens: Vec<String>,
        /// How to treat tokens outside the served vocabulary.
        policy: OovPolicy,
    },
}

/// A decoded `POST /infer` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferWire {
    /// The document.
    pub body: InferBody,
    /// The `"seed"` member, if present (the `X-Saber-Seed` header, handled
    /// by the HTTP layer, takes precedence).
    pub seed: Option<u64>,
}

/// Decodes a `POST /infer` JSON body.
///
/// # Errors
///
/// Returns [`WireError`] for invalid JSON, a body that has neither `words`
/// nor `tokens` (or both), word ids outside `u32`, or an unknown `oov`
/// policy.
pub fn decode_infer(body: &str) -> Result<InferWire, WireError> {
    let value = json::parse(body)?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(WireError::new("request body must be a JSON object"));
    }
    let seed = match value.get("seed") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| WireError::new("'seed' must be an unsigned 64-bit integer"))?,
        ),
    };
    let body = match (value.get("words"), value.get("tokens")) {
        (Some(words), None) => InferBody::Words(decode_word_ids(words)?),
        (None, Some(tokens)) => {
            let tokens = tokens
                .as_array()
                .ok_or_else(|| WireError::new("'tokens' must be an array of strings"))?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| WireError::new("'tokens' must be an array of strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let policy = match value.get("oov") {
                None | Some(JsonValue::Null) => OovPolicy::Skip,
                Some(v) => match v.as_str() {
                    Some("skip") => OovPolicy::Skip,
                    Some("fail") => OovPolicy::Fail,
                    _ => return Err(WireError::new("'oov' must be \"skip\" or \"fail\"")),
                },
            };
            InferBody::Tokens { tokens, policy }
        }
        (Some(_), Some(_)) => {
            return Err(WireError::new(
                "request must carry 'words' or 'tokens', not both",
            ))
        }
        (None, None) => {
            return Err(WireError::new(
                "request must carry a 'words' (word ids) or 'tokens' (raw strings) array",
            ))
        }
    };
    Ok(InferWire { body, seed })
}

fn decode_word_ids(value: &JsonValue) -> Result<Vec<u32>, WireError> {
    value
        .as_array()
        .ok_or_else(|| WireError::new("'words' must be an array of word ids"))?
        .iter()
        .map(|w| {
            w.as_u64()
                .filter(|&id| id <= u64::from(u32::MAX))
                .map(|id| id as u32)
                .ok_or_else(|| WireError::new("word ids must be unsigned 32-bit integers"))
        })
        .collect()
}

/// Parses a comma-separated word-id list from a query-string value
/// (`a=1,2,3` on `GET /similar`).
///
/// # Errors
///
/// Returns [`WireError`] when any element is not an unsigned 32-bit integer.
pub fn parse_id_list(raw: &str) -> Result<Vec<u32>, WireError> {
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|part| {
            part.trim()
                .parse::<u32>()
                .map_err(|_| WireError::new(format!("'{part}' is not an unsigned word id")))
        })
        .collect()
}

/// Encodes an [`InferResponse`], echoing the seed that produced it so the
/// client can replay the request bit-identically.
pub fn encode_infer_response(response: &InferResponse, seed: u64) -> JsonValue {
    JsonValue::object([
        ("theta", JsonValue::f32_array(&response.theta)),
        ("dominant_topic", JsonValue::from(response.dominant_topic())),
        (
            "snapshot_version",
            JsonValue::from(response.snapshot_version),
        ),
        ("n_oov", JsonValue::from(response.n_oov)),
        ("seed", JsonValue::from(seed)),
    ])
}

/// Encodes a `GET /top-words` response; word ids are resolved to strings
/// when the server has a vocabulary attached.
pub fn encode_top_words(topic: usize, top: &[(u32, f32)], vocab: Option<&Vocabulary>) -> JsonValue {
    let words = top
        .iter()
        .map(|&(word, prob)| {
            let mut pairs = vec![
                ("word", JsonValue::from(u64::from(word))),
                ("prob", JsonValue::Number(f64::from(prob))),
            ];
            if let Some(token) = vocab.and_then(|v| v.word(word)) {
                pairs.push(("token", JsonValue::from(token)));
            }
            JsonValue::object(pairs)
        })
        .collect();
    JsonValue::object([
        ("topic", JsonValue::from(topic)),
        ("words", JsonValue::Array(words)),
    ])
}

/// Encodes a `GET /similar` response: both distance measures plus the
/// per-document θ metadata needed to interpret them.
pub fn encode_similar(
    a: &InferResponse,
    b: &InferResponse,
    hellinger: f32,
    cosine: f32,
    seed: u64,
) -> JsonValue {
    JsonValue::object([
        ("hellinger", JsonValue::Number(f64::from(hellinger))),
        ("cosine", JsonValue::Number(f64::from(cosine))),
        ("dominant_topic_a", JsonValue::from(a.dominant_topic())),
        ("dominant_topic_b", JsonValue::from(b.dominant_topic())),
        ("snapshot_version", JsonValue::from(a.snapshot_version)),
        ("seed", JsonValue::from(seed)),
    ])
}

/// Encodes a latency histogram as `{count, mean_us, p50_us, p95_us, p99_us}`
/// (quantiles are `null` until the first sample). Histograms whose top
/// bucket clamped at least one sample additionally carry an `overflow`
/// member — omitted when zero, so the common-case bytes are unchanged and
/// a nonzero overflow is impossible to miss.
pub fn encode_histogram(h: &HistogramSnapshot) -> JsonValue {
    fn quantile(v: Option<f64>) -> JsonValue {
        v.map(JsonValue::Number).unwrap_or(JsonValue::Null)
    }
    let mut members = vec![
        ("count", JsonValue::from(h.count())),
        ("mean_us", quantile(h.mean_micros())),
        ("p50_us", quantile(h.p50())),
        ("p95_us", quantile(h.p95())),
        ("p99_us", quantile(h.p99())),
    ];
    if h.overflow() > 0 {
        members.push(("overflow", JsonValue::from(h.overflow())));
    }
    JsonValue::object(members)
}

/// Encodes the full `GET /stats` response body: the (shard-aggregated)
/// serving counters plus the HTTP layer's per-endpoint histograms.
///
/// Pure — all inputs are point-in-time copies — so the exact bytes are
/// pinned by the golden wire-format tests: reordering or renaming members
/// is a breaking protocol change and fails `tests/wire_golden.rs`.
pub fn encode_stats_body(
    server: &ServeStats,
    snapshot_version: u64,
    n_shards: usize,
    http: &HttpStats,
    router: Option<&RouterStats>,
) -> JsonValue {
    let mut members = vec![(
        "server",
        JsonValue::object([
            ("requests", JsonValue::from(server.requests)),
            ("tokens", JsonValue::from(server.tokens)),
            ("batches", JsonValue::from(server.batches)),
            ("swaps_observed", JsonValue::from(server.swaps_observed)),
            (
                "mean_batch_size",
                JsonValue::Number(server.mean_batch_size()),
            ),
            ("snapshot_version", JsonValue::from(snapshot_version)),
            ("shards", JsonValue::from(n_shards)),
            ("latency", encode_histogram(&server.latency)),
            ("queue_wait", encode_histogram(&server.queue_wait)),
            ("handler", encode_histogram(&server.handler)),
        ]),
    )];
    if let Some(router) = router {
        members.push(("router", encode_router_stats(router)));
    }
    members.push((
        "http",
        JsonValue::object([
            ("requests", JsonValue::from(http.requests)),
            ("errors", JsonValue::from(http.errors)),
            (
                "active_connections",
                JsonValue::from(http.active_connections),
            ),
            (
                "endpoints",
                JsonValue::object([
                    ("infer", encode_endpoint_stats(&http.infer)),
                    ("top_words", encode_endpoint_stats(&http.top_words)),
                    ("similar", encode_endpoint_stats(&http.similar)),
                    ("stats", encode_endpoint_stats(&http.stats)),
                    ("healthz", encode_endpoint_stats(&http.healthz)),
                ]),
            ),
        ]),
    ));
    JsonValue::object(members)
}

/// Encodes one endpoint's latency split: the end-to-end quantiles plus
/// the queue-wait/handler decomposition recovered from request traces.
fn encode_endpoint_stats(endpoint: &EndpointStats) -> JsonValue {
    JsonValue::object([
        ("total", encode_histogram(&endpoint.total)),
        ("queue_wait", encode_histogram(&endpoint.queue_wait)),
        ("handler", encode_histogram(&endpoint.handler)),
    ])
}

/// Encodes the router-level counters complementing the shard-aggregated
/// `server` block of `GET /stats`: the fleet epoch, skew retries, documents
/// routed, how many shard requests each shard received, plus the
/// self-healing counters (transport retries, hedges, breaker
/// trips/re-admissions) and per-replica admission. Absent from direct
/// (unsharded) servers.
fn encode_router_stats(router: &RouterStats) -> JsonValue {
    let mut members = vec![
        ("requests", JsonValue::from(router.requests)),
        ("skew_retries", JsonValue::from(router.skew_retries)),
        ("epoch", JsonValue::from(router.epoch)),
        ("shards", JsonValue::from(router.n_shards)),
        (
            "shard_requests",
            JsonValue::Array(
                router
                    .shard_requests
                    .iter()
                    .map(|&n| JsonValue::from(n))
                    .collect(),
            ),
        ),
        (
            "transport_retries",
            JsonValue::from(router.transport_retries),
        ),
        ("hedges", JsonValue::from(router.hedges)),
        ("breaker_trips", JsonValue::from(router.breaker_trips)),
        ("breaker_readmits", JsonValue::from(router.breaker_readmits)),
        (
            "replica_health",
            JsonValue::Array(
                router
                    .replica_health
                    .iter()
                    .map(|set| {
                        JsonValue::Array(set.iter().map(|&ok| JsonValue::Bool(ok)).collect())
                    })
                    .collect(),
            ),
        ),
    ];
    // Present only after a first publication, so the stats bytes of a
    // fleet that never publishes stay pinned to the pre-pipeline golden.
    if let Some(pipeline) = &router.pipeline {
        members.push((
            "pipeline",
            JsonValue::object([
                (
                    "epochs_published",
                    JsonValue::from(pipeline.epochs_published),
                ),
                ("delta_epochs", JsonValue::from(pipeline.delta_epochs)),
                ("rows_shipped", JsonValue::from(pipeline.rows_shipped)),
                ("rows_total", JsonValue::from(pipeline.rows_total)),
                ("fallbacks", JsonValue::from(pipeline.fallbacks)),
                (
                    "last_publish_micros",
                    JsonValue::from(pipeline.last_publish_micros),
                ),
                (
                    "publish_micros_total",
                    JsonValue::from(pipeline.publish_micros_total),
                ),
            ]),
        ));
    }
    JsonValue::object(members)
}

/// Encodes an error body: `{"error": detail, "status": status}`.
pub fn encode_error(status: u16, detail: &str) -> JsonValue {
    JsonValue::object([
        ("error", JsonValue::from(detail)),
        ("status", JsonValue::from(u64::from(status))),
    ])
}

/// Upper bucket bounds (microseconds) of the Prometheus latency
/// histograms: 100 µs to 10 s in decades, plus the implicit `+Inf`. The
/// internal log₂ buckets are folded into these (a log₂ bucket counts
/// toward every exposition bound at or above its upper edge), trading the
/// 40-bucket fidelity for a stable, dashboard-friendly bound set.
const PROMETHEUS_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

fn prometheus_histogram(
    out: &mut String,
    name: &str,
    label: Option<(&str, &str)>,
    h: &HistogramSnapshot,
) {
    use std::fmt::Write as _;
    let mut cumulative = [0u64; PROMETHEUS_BOUNDS_US.len()];
    for i in 0..N_BUCKETS {
        let count = h.bucket_count(i);
        if count == 0 {
            continue;
        }
        let (_, high) = crate::stats::LatencyHistogram::bucket_bounds(i);
        for (slot, &bound) in cumulative.iter_mut().zip(PROMETHEUS_BOUNDS_US.iter()) {
            if high <= bound {
                *slot += count;
            }
        }
    }
    let plain = match label {
        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
        None => String::new(),
    };
    let with_le = |le: &str| match label {
        Some((k, v)) => format!("{{{k}=\"{v}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    for (&bound, &cum) in PROMETHEUS_BOUNDS_US.iter().zip(cumulative.iter()) {
        let le = format!("{}", bound as f64 / 1e6);
        let _ = writeln!(out, "{name}_bucket{} {}", with_le(&le), cum);
    }
    let _ = writeln!(out, "{name}_bucket{} {}", with_le("+Inf"), h.count());
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum_micros() as f64 / 1e6);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count());
}

/// Encodes the `GET /metrics` body in Prometheus text exposition format:
/// the serving and HTTP counters of [`encode_stats_body`] as
/// `saber_*`-prefixed counters and gauges, plus per-endpoint latency
/// histograms with cumulative buckets over fixed decade bounds (100 µs to
/// 10 s; internal log₂ buckets fold conservatively into the first bound
/// at or above their upper edge).
/// Router-backed servers additionally expose the fleet epoch, skew retries
/// and per-shard request counters.
pub fn encode_prometheus(
    server: &ServeStats,
    snapshot_version: u64,
    n_shards: usize,
    http: &HttpStats,
    router: Option<&RouterStats>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut counter = |name: &str, value: u64| {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    };
    counter("saber_http_requests_total", http.requests);
    counter("saber_http_errors_total", http.errors);
    counter("saber_serve_requests_total", server.requests);
    counter("saber_serve_tokens_total", server.tokens);
    counter("saber_serve_batches_total", server.batches);
    counter("saber_serve_swaps_observed_total", server.swaps_observed);
    // Explicit top-bucket clamp counters: nonzero means the matching
    // histogram's tail quantiles understate reality (samples ≥ 2^40 µs
    // were folded into the last bucket).
    counter(
        "saber_serve_latency_overflow_total",
        server.latency.overflow(),
    );
    counter(
        "saber_serve_queue_wait_overflow_total",
        server.queue_wait.overflow(),
    );
    counter(
        "saber_serve_handler_overflow_total",
        server.handler.overflow(),
    );
    let mut gauge = |name: &str, value: u64| {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    };
    gauge(
        "saber_http_active_connections",
        http.active_connections as u64,
    );
    gauge("saber_snapshot_epoch", snapshot_version);
    gauge("saber_shards", n_shards as u64);
    if let Some(router) = router {
        let mut counter = |name: &str, value: u64| {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        };
        counter("saber_router_requests_total", router.requests);
        counter("saber_router_skew_retries_total", router.skew_retries);
        counter(
            "saber_router_transport_retries_total",
            router.transport_retries,
        );
        counter("saber_router_hedges_total", router.hedges);
        counter("saber_router_breaker_trips_total", router.breaker_trips);
        counter(
            "saber_router_breaker_readmits_total",
            router.breaker_readmits,
        );
        let _ = writeln!(out, "# TYPE saber_router_shard_requests_total counter");
        for (s, &n) in router.shard_requests.iter().enumerate() {
            let _ = writeln!(
                out,
                "saber_router_shard_requests_total{{shard=\"{s}\"}} {n}"
            );
        }
        let _ = writeln!(out, "# TYPE saber_router_replica_admitted gauge");
        for (s, set) in router.replica_health.iter().enumerate() {
            for (r, &admitted) in set.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "saber_router_replica_admitted{{shard=\"{s}\",replica=\"{r}\"}} {}",
                    u64::from(admitted)
                );
            }
        }
        // Publication-path metrics appear only once an epoch has been
        // published, so a never-publishing fleet's exposition matches the
        // pre-pipeline golden byte for byte.
        if let Some(pipeline) = &router.pipeline {
            let mut counter = |name: &str, value: u64| {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
            };
            counter(
                "saber_pipeline_epochs_published_total",
                pipeline.epochs_published,
            );
            counter("saber_pipeline_delta_epochs_total", pipeline.delta_epochs);
            counter("saber_pipeline_rows_shipped_total", pipeline.rows_shipped);
            counter("saber_pipeline_rows_total", pipeline.rows_total);
            counter("saber_pipeline_fallbacks_total", pipeline.fallbacks);
            counter(
                "saber_pipeline_publish_micros_total",
                pipeline.publish_micros_total,
            );
            let _ = writeln!(
                out,
                "# TYPE saber_pipeline_last_publish_micros gauge\nsaber_pipeline_last_publish_micros {}",
                pipeline.last_publish_micros
            );
        }
    }
    // Exactly one TYPE line per metric name: the five endpoint series
    // share one histogram declaration (spec-conforming parsers reject a
    // repeated TYPE line for the same name).
    let _ = writeln!(out, "# TYPE saber_serve_latency_seconds histogram");
    prometheus_histogram(
        &mut out,
        "saber_serve_latency_seconds",
        None,
        &server.latency,
    );
    let _ = writeln!(out, "# TYPE saber_serve_queue_wait_seconds histogram");
    prometheus_histogram(
        &mut out,
        "saber_serve_queue_wait_seconds",
        None,
        &server.queue_wait,
    );
    let _ = writeln!(out, "# TYPE saber_serve_handler_seconds histogram");
    prometheus_histogram(
        &mut out,
        "saber_serve_handler_seconds",
        None,
        &server.handler,
    );
    let endpoints = [
        ("infer", &http.infer),
        ("top_words", &http.top_words),
        ("similar", &http.similar),
        ("stats", &http.stats),
        ("healthz", &http.healthz),
    ];
    let _ = writeln!(out, "# TYPE saber_http_request_duration_seconds histogram");
    for (endpoint, stats) in endpoints {
        prometheus_histogram(
            &mut out,
            "saber_http_request_duration_seconds",
            Some(("endpoint", endpoint)),
            &stats.total,
        );
    }
    let _ = writeln!(out, "# TYPE saber_http_queue_wait_seconds histogram");
    for (endpoint, stats) in endpoints {
        prometheus_histogram(
            &mut out,
            "saber_http_queue_wait_seconds",
            Some(("endpoint", endpoint)),
            &stats.queue_wait,
        );
    }
    let _ = writeln!(out, "# TYPE saber_http_handler_seconds histogram");
    for (endpoint, stats) in endpoints {
        prometheus_histogram(
            &mut out,
            "saber_http_handler_seconds",
            Some(("endpoint", endpoint)),
            &stats.handler,
        );
    }
    out
}

/// Maps a non-2xx shard response back onto the [`ServeError`] the shard's
/// HTTP layer encoded, so the router's error handling (and its skew-retry
/// loop) behaves identically whether the shard is a function call or a
/// socket away. The mapping inverts `http::serve_error`: the status picks
/// the family and, where one status covers several errors (503), the
/// canonical `Display` text disambiguates.
pub fn decode_serve_error(status: u16, body: &str) -> ServeError {
    let detail = json::parse(body)
        .ok()
        .and_then(|v| v.get("error").and_then(|e| e.as_str().map(str::to_string)))
        .unwrap_or_else(|| format!("shard answered HTTP {status}"));
    match status {
        429 => ServeError::Overloaded,
        400 => ServeError::BadRequest { detail },
        503 if detail.contains("deadline") => ServeError::DeadlineExceeded,
        503 if detail.contains("diverged") => ServeError::ShardVersionSkew,
        // A shard at its connection cap is busy, not gone: retryable.
        503 if detail.contains("connection limit") => ServeError::Overloaded,
        503 => ServeError::Closed,
        _ => ServeError::transport(format!("shard answered HTTP {status}: {detail}")),
    }
}

fn f64_array(values: &[f64]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&x| JsonValue::Number(x)).collect())
}

/// Decodes an array of finite `f64`s (θ or partial counts). Exactness
/// note: the serialiser prints shortest-round-trip representations, so a
/// value decoded here is bit-identical to the one encoded — which is what
/// keeps remote EM merges algebraically exact.
fn decode_f64_array(value: &JsonValue, what: &str) -> Result<Vec<f64>, WireError> {
    value
        .as_array()
        .ok_or_else(|| WireError::new(format!("'{what}' must be an array of numbers")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .filter(|v| v.is_finite())
                .ok_or_else(|| WireError::new(format!("'{what}' must hold finite numbers")))
        })
        .collect()
}

/// Encodes a `POST /infer-partial` request body: the shard-local word ids
/// plus either the derived ESCA chain seed or one EM round's index and θ.
pub fn encode_partial_request(words: &[u32], request: &PartialRequest) -> JsonValue {
    let words = JsonValue::Array(
        words
            .iter()
            .map(|&w| JsonValue::from(u64::from(w)))
            .collect(),
    );
    match request {
        PartialRequest::FoldIn { seed } => JsonValue::object([
            ("words", words),
            (
                "esca",
                JsonValue::object([("seed", JsonValue::from(*seed))]),
            ),
        ]),
        PartialRequest::EmRound { round, theta } => JsonValue::object([
            ("words", words),
            (
                "em",
                JsonValue::object([
                    ("round", JsonValue::from(*round)),
                    ("theta", f64_array(theta)),
                ]),
            ),
        ]),
    }
}

/// Decodes a `POST /infer-partial` body into the word list and request the
/// shard-side server executes.
///
/// # Errors
///
/// Returns [`WireError`] for invalid JSON, a missing/duplicated request
/// member, word ids outside `u32`, or a non-finite θ.
pub fn decode_partial_request(body: &str) -> Result<(Vec<u32>, PartialRequest), WireError> {
    let value = json::parse(body)?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(WireError::new("request body must be a JSON object"));
    }
    let words = decode_word_ids(
        value
            .get("words")
            .ok_or_else(|| WireError::new("request must carry a 'words' array"))?,
    )?;
    let request = match (value.get("esca"), value.get("em")) {
        (Some(esca), None) => {
            let seed = esca
                .get("seed")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| WireError::new("'esca.seed' must be an unsigned 64-bit integer"))?;
            PartialRequest::FoldIn { seed }
        }
        (None, Some(em)) => {
            let round = em
                .get("round")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| WireError::new("'em.round' must be an unsigned integer"))?
                as usize;
            let theta = decode_f64_array(
                em.get("theta")
                    .ok_or_else(|| WireError::new("'em' must carry a 'theta' array"))?,
                "em.theta",
            )?;
            PartialRequest::EmRound {
                round,
                theta: Arc::new(theta),
            }
        }
        (Some(_), Some(_)) => {
            return Err(WireError::new(
                "request must carry 'esca' or 'em', not both",
            ))
        }
        (None, None) => {
            return Err(WireError::new(
                "request must carry an 'esca' (chain seed) or 'em' (round + theta) member",
            ))
        }
    };
    Ok((words, request))
}

/// Encodes a `POST /infer-partial` response: the raw per-topic counts plus
/// the snapshot version the router's epoch-skew detection keys on and the
/// word-id range this shard serves (informational; `[start, end)`).
///
/// The `spans` member — the shard-local trace subtree — is appended only
/// when the request was traced, so untraced responses keep their exact
/// pre-tracing byte layout.
pub fn encode_partial_response(response: &PartialResponse, shard: (u32, u32)) -> JsonValue {
    let mut members = vec![
        ("counts", f64_array(&response.partial.counts)),
        ("n_words", JsonValue::from(response.partial.n_words)),
        (
            "snapshot_version",
            JsonValue::from(response.snapshot_version),
        ),
        ("n_oov", JsonValue::from(response.n_oov)),
        ("shard", shard_range_json(shard)),
    ];
    if !response.spans.is_empty() {
        members.push((
            "spans",
            JsonValue::Array(response.spans.iter().map(encode_span).collect()),
        ));
    }
    JsonValue::object(members)
}

/// Decodes a `POST /infer-partial` response body.
///
/// # Errors
///
/// Returns [`WireError`] when any member is missing or mistyped.
pub fn decode_partial_response(body: &str) -> Result<PartialResponse, WireError> {
    let value = json::parse(body)?;
    let counts = decode_f64_array(
        value
            .get("counts")
            .ok_or_else(|| WireError::new("response must carry a 'counts' array"))?,
        "counts",
    )?;
    let n_words = value
        .get("n_words")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new("'n_words' must be an unsigned integer"))?
        as usize;
    let snapshot_version = value
        .get("snapshot_version")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new("'snapshot_version' must be an unsigned integer"))?;
    let n_oov = value
        .get("n_oov")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new("'n_oov' must be an unsigned integer"))?
        as usize;
    let spans = match value.get("spans") {
        None | Some(JsonValue::Null) => Vec::new(),
        Some(v) => decode_spans(v)?,
    };
    Ok(PartialResponse {
        partial: PartialFoldIn { counts, n_words },
        snapshot_version,
        n_oov,
        spans,
    })
}

/// Encodes one trace span as a JSON object. The `events` member is omitted
/// when empty to keep the common (event-free) span compact.
fn encode_span(span: &SpanRecord) -> JsonValue {
    let mut members = vec![
        ("id", JsonValue::from(span.id)),
        (
            "parent",
            span.parent.map(JsonValue::from).unwrap_or(JsonValue::Null),
        ),
        ("name", JsonValue::from(span.name.as_str())),
        ("start_us", JsonValue::from(span.start_us)),
        ("duration_us", JsonValue::from(span.duration_us)),
    ];
    if !span.events.is_empty() {
        members.push((
            "events",
            JsonValue::Array(
                span.events
                    .iter()
                    .map(|e| {
                        JsonValue::object([
                            ("at_us", JsonValue::from(e.at_us)),
                            ("message", JsonValue::from(e.message.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    JsonValue::object(members)
}

/// Decodes an array of trace spans ([`encode_span`]'s inverse).
fn decode_spans(value: &JsonValue) -> Result<Vec<SpanRecord>, WireError> {
    value
        .as_array()
        .ok_or_else(|| WireError::new("'spans' must be an array of span objects"))?
        .iter()
        .map(|span| {
            let uint = |name: &str| {
                span.get(name).and_then(JsonValue::as_u64).ok_or_else(|| {
                    WireError::new(format!("span '{name}' must be an unsigned integer"))
                })
            };
            let parent = match span.get("parent") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    WireError::new("span 'parent' must be an unsigned integer or null")
                })?),
            };
            let name = span
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| WireError::new("span 'name' must be a string"))?
                .to_string();
            let events = match span.get("events") {
                None | Some(JsonValue::Null) => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| WireError::new("span 'events' must be an array"))?
                    .iter()
                    .map(|e| {
                        let at_us =
                            e.get("at_us").and_then(JsonValue::as_u64).ok_or_else(|| {
                                WireError::new("event 'at_us' must be an unsigned integer")
                            })?;
                        let message = e
                            .get("message")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| WireError::new("event 'message' must be a string"))?
                            .to_string();
                        Ok(SpanEvent { at_us, message })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?,
            };
            Ok(SpanRecord {
                id: uint("id")?,
                parent,
                name,
                start_us: uint("start_us")?,
                duration_us: uint("duration_us")?,
                events,
            })
        })
        .collect()
}

/// Encodes the `GET /trace/recent` response: the ring buffer of recently
/// completed traces plus the slow-request capture (the worst traces above
/// the configured threshold), newest-first within each list.
pub fn encode_trace_recent(recent: &[Trace], slow: &[Trace], threshold_us: u64) -> JsonValue {
    JsonValue::object([
        (
            "recent",
            JsonValue::Array(recent.iter().map(encode_trace).collect()),
        ),
        (
            "slow",
            JsonValue::object([
                ("threshold_us", JsonValue::from(threshold_us)),
                (
                    "traces",
                    JsonValue::Array(slow.iter().map(encode_trace).collect()),
                ),
            ]),
        ),
    ])
}

fn encode_trace(trace: &Trace) -> JsonValue {
    JsonValue::object([
        ("trace_id", JsonValue::from(trace.trace_id.to_hex())),
        ("total_us", JsonValue::from(trace.total_us)),
        (
            "spans",
            JsonValue::Array(trace.spans.iter().map(encode_span).collect()),
        ),
    ])
}

/// Decodes the `recent` list of a `GET /trace/recent` body — the client
/// half of [`encode_trace_recent`] used by tests and tooling.
///
/// # Errors
///
/// Returns [`WireError`] when the body is not a trace-recent response.
pub fn decode_trace_recent(body: &str) -> Result<Vec<Trace>, WireError> {
    let value = json::parse(body)?;
    value
        .get("recent")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| WireError::new("response must carry a 'recent' array"))?
        .iter()
        .map(decode_trace)
        .collect()
}

fn decode_trace(value: &JsonValue) -> Result<Trace, WireError> {
    let trace_id = value
        .get("trace_id")
        .and_then(JsonValue::as_str)
        .and_then(TraceId::parse_hex)
        .ok_or_else(|| WireError::new("'trace_id' must be a 16-hex-digit string"))?;
    let total_us = value
        .get("total_us")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new("'total_us' must be an unsigned integer"))?;
    let spans = decode_spans(
        value
            .get("spans")
            .ok_or_else(|| WireError::new("trace must carry a 'spans' array"))?,
    )?;
    Ok(Trace {
        trace_id,
        total_us,
        spans,
    })
}

fn shard_range_json(shard: (u32, u32)) -> JsonValue {
    JsonValue::Array(vec![
        JsonValue::from(u64::from(shard.0)),
        JsonValue::from(u64::from(shard.1)),
    ])
}

fn decode_shard_range(value: &JsonValue) -> Result<(u32, u32), WireError> {
    let err = || WireError::new("'shard' must be a [start, end) pair of word ids");
    let pair = value.as_array().ok_or_else(err)?;
    match pair {
        [a, b] => {
            let a = a
                .as_u64()
                .filter(|&v| v <= u64::from(u32::MAX))
                .ok_or_else(err)?;
            let b = b
                .as_u64()
                .filter(|&v| v <= u64::from(u32::MAX))
                .ok_or_else(err)?;
            Ok((a as u32, b as u32))
        }
        _ => Err(err()),
    }
}

fn encode_fold_in(params: &FoldInParams) -> JsonValue {
    JsonValue::object([
        (
            "kind",
            JsonValue::from(match params.kind {
                FoldInKind::Esca => "esca",
                FoldInKind::Em => "em",
            }),
        ),
        ("burn_in", JsonValue::from(params.burn_in)),
        ("samples", JsonValue::from(params.samples)),
    ])
}

fn decode_fold_in(value: &JsonValue) -> Result<FoldInParams, WireError> {
    let kind = match value.get("kind").and_then(JsonValue::as_str) {
        Some("esca") => FoldInKind::Esca,
        Some("em") => FoldInKind::Em,
        _ => return Err(WireError::new("'fold_in.kind' must be \"esca\" or \"em\"")),
    };
    let count = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| WireError::new(format!("'fold_in.{name}' must be an unsigned integer")))
    };
    Ok(FoldInParams {
        burn_in: count("burn_in")?,
        samples: count("samples")?,
        kind,
    })
}

/// Encodes one histogram losslessly as `{sum_us, buckets: [[index,
/// count], ...]}`, skipping empty buckets. A nonzero top-bucket overflow
/// count rides along as an `overflow` member (omitted when zero, so
/// pre-overflow peers' bytes — and the golden fixtures — are unchanged).
fn encode_sparse_histogram(h: &HistogramSnapshot) -> JsonValue {
    let buckets: Vec<JsonValue> = (0..N_BUCKETS)
        .filter(|&i| h.bucket_count(i) > 0)
        .map(|i| JsonValue::Array(vec![JsonValue::from(i), JsonValue::from(h.bucket_count(i))]))
        .collect();
    let mut members = vec![
        ("sum_us", JsonValue::from(h.sum_micros())),
        ("buckets", JsonValue::Array(buckets)),
    ];
    if h.overflow() > 0 {
        members.push(("overflow", JsonValue::from(h.overflow())));
    }
    JsonValue::object(members)
}

fn decode_sparse_histogram(value: &JsonValue, what: &str) -> Result<HistogramSnapshot, WireError> {
    let sum_us = value
        .get("sum_us")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new(format!("'{what}.sum_us' must be an unsigned integer")))?;
    // Absent ⇒ 0: a peer predating the overflow counter simply never
    // clamped (or never said so), and the merge must still work.
    let overflow = match value.get("overflow") {
        None => 0,
        Some(v) => v.as_u64().ok_or_else(|| {
            WireError::new(format!("'{what}.overflow' must be an unsigned integer"))
        })?,
    };
    let pairs = value
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| WireError::new(format!("'{what}.buckets' must be an array")))?
        .iter()
        .map(|pair| {
            let err = || WireError::new(format!("'{what}.buckets' entries must be [index, count]"));
            match pair.as_array().ok_or_else(err)? {
                [i, c] => {
                    let i = i.as_u64().ok_or_else(err)? as usize;
                    let c = c.as_u64().ok_or_else(err)?;
                    Ok((i, c))
                }
                _ => Err(err()),
            }
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    HistogramSnapshot::from_sparse_buckets(pairs, sum_us, overflow)
        .ok_or_else(|| WireError::new(format!("'{what}.buckets' index out of range")))
}

/// Encodes a full [`ServeStats`], histogram buckets included — unlike the
/// human-facing `/stats` body (which only derives quantiles), this is
/// lossless, so a router can merge remote shard histograms (end-to-end
/// latency plus its queue-wait/handler split) exactly.
fn encode_serve_stats(stats: &ServeStats) -> JsonValue {
    JsonValue::object([
        ("requests", JsonValue::from(stats.requests)),
        ("tokens", JsonValue::from(stats.tokens)),
        ("batches", JsonValue::from(stats.batches)),
        ("swaps_observed", JsonValue::from(stats.swaps_observed)),
        ("latency", encode_sparse_histogram(&stats.latency)),
        ("queue_wait", encode_sparse_histogram(&stats.queue_wait)),
        ("handler", encode_sparse_histogram(&stats.handler)),
    ])
}

fn decode_serve_stats(value: &JsonValue) -> Result<ServeStats, WireError> {
    let counter = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| WireError::new(format!("'stats.{name}' must be an unsigned integer")))
    };
    let histogram = |name: &str| {
        decode_sparse_histogram(
            value
                .get(name)
                .ok_or_else(|| WireError::new(format!("'stats' must carry a '{name}' member")))?,
            name,
        )
    };
    Ok(ServeStats {
        requests: counter("requests")?,
        tokens: counter("tokens")?,
        batches: counter("batches")?,
        swaps_observed: counter("swaps_observed")?,
        latency: histogram("latency")?,
        queue_wait: histogram("queue_wait")?,
        handler: histogram("handler")?,
    })
}

/// Encodes a `GET /shard-info` response: everything a router needs to
/// validate a shard before fanning out to it, plus the shard's full serving
/// counters (lossless histogram included).
pub fn encode_shard_info(info: &ShardInfo) -> JsonValue {
    JsonValue::object([
        ("epoch", JsonValue::from(info.epoch)),
        ("vocab_size", JsonValue::from(info.vocab_size)),
        ("n_topics", JsonValue::from(info.n_topics)),
        ("alpha", JsonValue::Number(f64::from(info.alpha))),
        ("shard", shard_range_json(info.shard_range)),
        ("fold_in", encode_fold_in(&info.fold_in)),
        ("stats", encode_serve_stats(&info.stats)),
    ])
}

/// Decodes a `GET /shard-info` response body.
///
/// # Errors
///
/// Returns [`WireError`] when any member is missing or mistyped.
pub fn decode_shard_info(body: &str) -> Result<ShardInfo, WireError> {
    let value = json::parse(body)?;
    let uint = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| WireError::new(format!("'{name}' must be an unsigned integer")))
    };
    let alpha = value
        .get("alpha")
        .and_then(JsonValue::as_f64)
        .filter(|a| a.is_finite())
        .ok_or_else(|| WireError::new("'alpha' must be a finite number"))? as f32;
    let shard_range = decode_shard_range(
        value
            .get("shard")
            .ok_or_else(|| WireError::new("response must carry a 'shard' range"))?,
    )?;
    let fold_in = decode_fold_in(
        value
            .get("fold_in")
            .ok_or_else(|| WireError::new("response must carry a 'fold_in' member"))?,
    )?;
    let stats = decode_serve_stats(
        value
            .get("stats")
            .ok_or_else(|| WireError::new("response must carry a 'stats' member"))?,
    )?;
    Ok(ShardInfo {
        epoch: uint("epoch")?,
        vocab_size: uint("vocab_size")? as usize,
        n_topics: uint("n_topics")? as usize,
        alpha,
        shard_range,
        fold_in,
        stats,
    })
}

/// Decodes a `GET /top-words` response into `(word id, probability)` pairs
/// — the client half of [`encode_top_words`] a remote transport uses.
///
/// # Errors
///
/// Returns [`WireError`] when the body is not a top-words response.
pub fn decode_top_words(body: &str) -> Result<Vec<(u32, f32)>, WireError> {
    let value = json::parse(body)?;
    value
        .get("words")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| WireError::new("response must carry a 'words' array"))?
        .iter()
        .map(|entry| {
            let word = entry
                .get("word")
                .and_then(JsonValue::as_u64)
                .filter(|&w| w <= u64::from(u32::MAX))
                .ok_or_else(|| WireError::new("'word' must be an unsigned 32-bit integer"))?;
            let prob = entry
                .get("prob")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| WireError::new("'prob' must be a number"))?;
            Ok((word as u32, prob as f32))
        })
        .collect()
}

/// Extracts the served snapshot version from a `GET /healthz` body — the
/// cheap epoch probe a remote transport polls.
///
/// # Errors
///
/// Returns [`WireError`] when the body has no `snapshot_version`.
pub fn decode_healthz_version(body: &str) -> Result<u64, WireError> {
    json::parse(body)?
        .get("snapshot_version")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new("response must carry a 'snapshot_version'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_word_id_bodies() {
        let wire = decode_infer(r#"{"words":[1,2,3],"seed":9}"#).unwrap();
        assert_eq!(wire.body, InferBody::Words(vec![1, 2, 3]));
        assert_eq!(wire.seed, Some(9));
        let no_seed = decode_infer(r#"{"words":[]}"#).unwrap();
        assert_eq!(no_seed.seed, None);
        assert_eq!(no_seed.body, InferBody::Words(vec![]));
    }

    #[test]
    fn decodes_raw_token_bodies_with_policy() {
        let wire = decode_infer(r#"{"tokens":["a","b"],"oov":"fail","seed":1}"#).unwrap();
        assert_eq!(
            wire.body,
            InferBody::Tokens {
                tokens: vec!["a".into(), "b".into()],
                policy: OovPolicy::Fail,
            }
        );
        let default_policy = decode_infer(r#"{"tokens":["a"]}"#).unwrap();
        assert!(matches!(
            default_policy.body,
            InferBody::Tokens {
                policy: OovPolicy::Skip,
                ..
            }
        ));
    }

    #[test]
    fn seeds_above_2_pow_53_survive() {
        let seed = u64::MAX - 1;
        let wire = decode_infer(&format!(r#"{{"words":[0],"seed":{seed}}}"#)).unwrap();
        assert_eq!(wire.seed, Some(seed));
    }

    #[test]
    fn rejects_malformed_bodies() {
        for body in [
            "",
            "[]",
            "{}",
            r#"{"words":[1],"tokens":["a"]}"#,
            r#"{"words":"nope"}"#,
            r#"{"words":[-1]}"#,
            r#"{"words":[4294967296]}"#,
            r#"{"words":[0.5]}"#,
            r#"{"tokens":[1]}"#,
            r#"{"tokens":["a"],"oov":"explode"}"#,
            r#"{"words":[1],"seed":-3}"#,
        ] {
            assert!(decode_infer(body).is_err(), "{body:?} must be rejected");
        }
    }

    #[test]
    fn id_list_parsing() {
        assert_eq!(parse_id_list("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_id_list("7").unwrap(), vec![7]);
        assert_eq!(parse_id_list("").unwrap(), Vec::<u32>::new());
        assert!(parse_id_list("1,x").is_err());
        assert!(parse_id_list("-1").is_err());
    }

    #[test]
    fn response_encoding_has_stable_members() {
        let response = InferResponse {
            theta: vec![0.75, 0.25],
            snapshot_version: 3,
            n_oov: 1,
        };
        let encoded = encode_infer_response(&response, 42);
        assert_eq!(encoded.get("dominant_topic").unwrap().as_u64(), Some(0));
        assert_eq!(encoded.get("snapshot_version").unwrap().as_u64(), Some(3));
        assert_eq!(encoded.get("n_oov").unwrap().as_u64(), Some(1));
        assert_eq!(encoded.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(encoded.get("theta").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn top_words_resolve_tokens_when_vocab_present() {
        let vocab = Vocabulary::synthetic(4);
        let encoded = encode_top_words(1, &[(0, 0.5), (3, 0.25)], Some(&vocab));
        let words = encoded.get("words").unwrap().as_array().unwrap();
        assert_eq!(words[0].get("token").unwrap().as_str(), Some("w00000"));
        let anonymous = encode_top_words(1, &[(0, 0.5)], None);
        let words = anonymous.get("words").unwrap().as_array().unwrap();
        assert!(words[0].get("token").is_none());
    }

    #[test]
    fn error_and_histogram_encoding() {
        let err = encode_error(429, "queue full");
        assert_eq!(err.get("status").unwrap().as_u64(), Some(429));
        assert_eq!(err.get("error").unwrap().as_str(), Some("queue full"));
        let empty = encode_histogram(&HistogramSnapshot::default());
        assert_eq!(empty.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(empty.get("p99_us"), Some(&JsonValue::Null));
    }
}
