use std::fmt;

use crate::{DenseMatrix, Result, SparseError, SparseRowView};

/// A compressed-sparse-rows (CSR) matrix.
///
/// SaberLDA stores the document–topic count matrix `A` in CSR form (§3.1.1):
/// the sampler only ever iterates over the non-zero topics of a document, and
/// the CSR layout also cuts host↔device transfer volume compared to the dense
/// representation of prior GPU systems.
///
/// Invariants maintained by every constructor:
///
/// * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, monotone non-decreasing,
///   `row_ptr[n_rows] == col_idx.len() == values.len()`;
/// * within a row, column indices are strictly increasing and `< n_cols`.
///
/// # Examples
///
/// ```
/// use saber_sparse::CsrMatrix;
///
/// let m = CsrMatrix::<u32>::from_rows(4, &[vec![(0, 1), (3, 2)], vec![], vec![(2, 5)]]).unwrap();
/// assert_eq!(m.shape(), (3, 4));
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.row(0).get(3), Some(2));
/// assert!(m.row(1).is_empty());
/// ```
#[derive(Clone, PartialEq)]
pub struct CsrMatrix<T> {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for CsrMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrMatrix")
            .field("n_rows", &self.n_rows)
            .field("n_cols", &self.n_cols)
            .field("nnz", &self.col_idx.len())
            .finish()
    }
}

impl<T: Copy> CsrMatrix<T> {
    /// Builds a matrix from per-row `(column, value)` lists.
    ///
    /// Each row list must have strictly increasing column indices.
    ///
    /// # Errors
    ///
    /// * [`SparseError::ColumnOutOfBounds`] if a column index `>= n_cols`;
    /// * [`SparseError::UnsortedRow`] if a row's columns are not strictly
    ///   increasing.
    pub fn from_rows(n_cols: usize, rows: &[Vec<(u32, T)>]) -> Result<Self> {
        let mut b = CsrBuilder::new(n_cols);
        for row in rows {
            b.push_row(row.iter().copied())?;
        }
        Ok(b.build())
    }

    /// Builds a CSR matrix from a dense matrix, dropping zero entries.
    pub fn from_dense(dense: &DenseMatrix<T>) -> Self
    where
        T: Default + PartialEq,
    {
        let mut b = CsrBuilder::new(dense.cols());
        for r in 0..dense.rows() {
            let row = dense.row(r);
            b.push_row_unchecked(
                row.iter()
                    .enumerate()
                    .filter(|(_, v)| **v != T::default())
                    .map(|(c, v)| (c as u32, *v)),
            );
        }
        b.build()
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix<T>
    where
        T: Default,
    {
        let mut out = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for (c, &v) in self.row(r).iter() {
                out[(r, c as usize)] = v;
            }
        }
        out
    }
}

impl<T> CsrMatrix<T> {
    /// Builds a matrix directly from raw CSR arrays.
    ///
    /// # Errors
    ///
    /// Validates all CSR invariants listed in the type-level documentation and
    /// returns the corresponding [`SparseError`] on violation.
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self> {
        if row_ptr.len() != n_rows + 1 {
            return Err(SparseError::MalformedRowPtr {
                detail: format!("expected length {}, got {}", n_rows + 1, row_ptr.len()),
            });
        }
        if row_ptr.first() != Some(&0) {
            return Err(SparseError::MalformedRowPtr {
                detail: "row_ptr[0] must be 0".to_string(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                indices: col_idx.len(),
                values: values.len(),
            });
        }
        if *row_ptr.last().expect("non-empty row_ptr") != col_idx.len() {
            return Err(SparseError::MalformedRowPtr {
                detail: format!(
                    "row_ptr[n_rows]={} but nnz={}",
                    row_ptr.last().unwrap(),
                    col_idx.len()
                ),
            });
        }
        for r in 0..n_rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::MalformedRowPtr {
                    detail: format!("row_ptr decreases at row {r}"),
                });
            }
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::UnsortedRow { row: r });
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= n_cols {
                    return Err(SparseError::ColumnOutOfBounds { col: last, n_cols });
                }
            }
        }
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows, self.n_cols)
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Average number of stored entries per row (the paper's `K_d` when the
    /// matrix is the document–topic matrix).
    pub fn mean_nnz_per_row(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n_rows as f64
        }
    }

    /// Borrow row `r` as a [`SparseRowView`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> SparseRowView<'_, T> {
        assert!(
            r < self.n_rows,
            "row {r} out of bounds ({} rows)",
            self.n_rows
        );
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        SparseRowView::new(&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.n_rows, "row {r} out of bounds");
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterator over all rows as [`SparseRowView`]s.
    pub fn iter_rows(&self) -> RowIter<'_, T> {
        RowIter {
            matrix: self,
            row: 0,
        }
    }

    /// The raw row-pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw value array.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Size of the payload arrays in bytes (CSR footprint reported in Table 2).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<T>()
    }
}

impl<T> Default for CsrMatrix<T> {
    fn default() -> Self {
        CsrMatrix {
            n_rows: 0,
            n_cols: 0,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }
}

/// Iterator over the rows of a [`CsrMatrix`], yielding [`SparseRowView`]s.
#[derive(Debug)]
pub struct RowIter<'a, T> {
    matrix: &'a CsrMatrix<T>,
    row: usize,
}

impl<'a, T> Iterator for RowIter<'a, T> {
    type Item = SparseRowView<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.row >= self.matrix.n_rows {
            return None;
        }
        let view = self.matrix.row(self.row);
        self.row += 1;
        Some(view)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.matrix.n_rows - self.row;
        (rem, Some(rem))
    }
}

impl<'a, T> ExactSizeIterator for RowIter<'a, T> {}

/// Incremental builder for a [`CsrMatrix`], appending one row at a time.
///
/// This is how the M-step count kernels assemble the document–topic matrix: a
/// chunk's documents are counted in order and each per-document histogram is
/// appended as a row.
///
/// # Examples
///
/// ```
/// use saber_sparse::CsrBuilder;
///
/// let mut b = CsrBuilder::<u32>::new(8);
/// b.push_row([(1, 3), (5, 1)]).unwrap();
/// b.push_row([]).unwrap();
/// let m = b.build();
/// assert_eq!(m.shape(), (2, 8));
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder<T> {
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Copy> CsrBuilder<T> {
    /// Creates a builder for a matrix with `n_cols` columns and no rows yet.
    pub fn new(n_cols: usize) -> Self {
        CsrBuilder {
            n_cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `rows` rows and `nnz`
    /// total entries.
    pub fn with_capacity(n_cols: usize, rows: usize, nnz: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        CsrBuilder {
            n_cols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Appends a row given `(column, value)` pairs with strictly increasing
    /// columns.
    ///
    /// # Errors
    ///
    /// * [`SparseError::ColumnOutOfBounds`] for a column `>= n_cols`;
    /// * [`SparseError::UnsortedRow`] if columns are not strictly increasing.
    pub fn push_row<I: IntoIterator<Item = (u32, T)>>(&mut self, entries: I) -> Result<()> {
        let start = self.col_idx.len();
        let row = self.row_ptr.len() - 1;
        let mut prev: Option<u32> = None;
        for (c, v) in entries {
            if c as usize >= self.n_cols {
                self.col_idx.truncate(start);
                self.values.truncate(start);
                return Err(SparseError::ColumnOutOfBounds {
                    col: c,
                    n_cols: self.n_cols,
                });
            }
            if let Some(p) = prev {
                if c <= p {
                    self.col_idx.truncate(start);
                    self.values.truncate(start);
                    return Err(SparseError::UnsortedRow { row });
                }
            }
            prev = Some(c);
            self.col_idx.push(c);
            self.values.push(v);
        }
        self.row_ptr.push(self.col_idx.len());
        Ok(())
    }

    /// Appends a row without validating entries (used on hot paths where the
    /// caller constructs entries that are sorted by construction).
    pub fn push_row_unchecked<I: IntoIterator<Item = (u32, T)>>(&mut self, entries: I) {
        for (c, v) in entries {
            debug_assert!((c as usize) < self.n_cols);
            self.col_idx.push(c);
            self.values.push(v);
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Number of rows appended so far.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Finalises the matrix.
    pub fn build(self) -> CsrMatrix<T> {
        CsrMatrix {
            n_rows: self.row_ptr.len() - 1,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix<u32> {
        // Fig. 1 of the paper: 3 documents, 3 topics.
        CsrMatrix::from_rows(3, &[vec![(2, 2)], vec![(0, 3), (2, 1)], vec![(1, 2)]]).unwrap()
    }

    #[test]
    fn basic_shape_and_access() {
        let m = example();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0).get(2), Some(2));
        assert_eq!(m.row(1).get(0), Some(3));
        assert_eq!(m.row(1).get(1), None);
        assert_eq!(m.row_nnz(1), 2);
        assert!((m.mean_nnz_per_row() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dense_roundtrip() {
        let m = example();
        let dense = m.to_dense();
        assert_eq!(dense[(1, 0)], 3);
        assert_eq!(dense[(0, 0)], 0);
        let back = CsrMatrix::from_dense(&dense);
        assert_eq!(back, m);
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let mut b = CsrBuilder::<u32>::new(4);
        assert!(b.push_row([(5, 1)]).is_err());
        assert!(b.push_row([(2, 1), (1, 1)]).is_err());
        assert!(b.push_row([(2, 1), (2, 1)]).is_err());
        // Failed pushes must not leave partial data behind.
        b.push_row([(0, 9)]).unwrap();
        let m = b.build();
        assert_eq!(m.rows(), 1);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn from_raw_parts_validation() {
        // Valid.
        assert!(CsrMatrix::from_raw_parts(2, 3, vec![0, 1, 2], vec![0, 2], vec![1u32, 1]).is_ok());
        // Bad row_ptr length.
        assert!(CsrMatrix::from_raw_parts(2, 3, vec![0, 1], vec![0], vec![1u32]).is_err());
        // Non-monotone row_ptr.
        assert!(CsrMatrix::from_raw_parts(2, 3, vec![0, 2, 1], vec![0, 1], vec![1u32, 1]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1u32]).is_err());
        // Unsorted row.
        assert!(CsrMatrix::from_raw_parts(1, 5, vec![0, 2], vec![3, 1], vec![1u32, 1]).is_err());
        // nnz mismatch.
        assert!(CsrMatrix::from_raw_parts(1, 5, vec![0, 2], vec![1], vec![1u32]).is_err());
    }

    #[test]
    fn iter_rows_counts() {
        let m = example();
        let nnzs: Vec<usize> = m.iter_rows().map(|r| r.nnz()).collect();
        assert_eq!(nnzs, vec![1, 2, 1]);
        assert_eq!(m.iter_rows().len(), 3);
    }

    #[test]
    fn empty_and_default() {
        let m: CsrMatrix<u32> = CsrMatrix::default();
        assert_eq!(m.shape(), (0, 0));
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.mean_nnz_per_row(), 0.0);
        let m = CsrMatrix::<f32>::from_rows(4, &[]).unwrap();
        assert_eq!(m.rows(), 0);
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let m = example();
        let expected = 4 * std::mem::size_of::<usize>() + 4 * 4 + 4 * 4;
        assert_eq!(m.memory_bytes(), expected);
    }
}
