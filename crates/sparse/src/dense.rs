use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{Result, SparseError};

/// A row-major dense matrix.
///
/// Used for the word–topic count matrix `B` and the word–topic probability
/// matrix `B̂`, which are accessed at random column positions and therefore do
/// not benefit from a sparse representation (§3.1.1 of the paper).
///
/// # Examples
///
/// ```
/// use saber_sparse::DenseMatrix;
///
/// let mut m = DenseMatrix::<f32>::zeros(2, 3);
/// m[(0, 1)] = 0.5;
/// assert_eq!(m.row(0), &[0.0, 0.5, 0.0]);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for DenseMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DenseMatrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz_capacity", &self.data.len())
            .finish()
    }
}

impl<T: Clone + Default> DenseMatrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Resets every element to `T::default()`.
    pub fn clear(&mut self) {
        for x in &mut self.data {
            *x = T::default();
        }
    }
}

impl<T> DenseMatrix<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Option<&T> {
        if r < self.rows && c < self.cols {
            Some(&self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// The underlying flat row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Size of the element payload in bytes (excluding the struct header).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }
}

impl DenseMatrix<u32> {
    /// Sum of a column, as `u64` to avoid overflow on billion-token corpora.
    pub fn col_sum(&self, c: usize) -> u64 {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows)
            .map(|r| u64::from(self.data[r * self.cols + c]))
            .sum()
    }

    /// Sum of a row.
    pub fn row_sum(&self, r: usize) -> u64 {
        self.row(r).iter().map(|&x| u64::from(x)).sum()
    }

    /// Total of all elements.
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&x| u64::from(x)).sum()
    }
}

impl DenseMatrix<f32> {
    /// Sum of a row.
    pub fn row_sum_f32(&self, r: usize) -> f64 {
        self.row(r).iter().map(|&x| f64::from(x)).sum()
    }
}

impl<T> Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;

    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for DenseMatrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Clone + Default> Default for DenseMatrix<T> {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = DenseMatrix::<u32>::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m[(2, 3)], 0);
        m[(2, 3)] = 7;
        assert_eq!(m[(2, 3)], 7);
        assert_eq!(m.get(2, 3), Some(&7));
        assert_eq!(m.get(3, 0), None);
        assert_eq!(m.get(0, 4), None);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1u32, 2, 3]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1u32, 2, 3, 4]).unwrap();
        assert_eq!(m.row(1), &[3, 4]);
    }

    #[test]
    fn row_access_and_iteration() {
        let m = DenseMatrix::from_vec(2, 3, vec![1u32, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.row(1), &[4, 5, 6]);
        let rows: Vec<&[u32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4, 5, 6]);
    }

    #[test]
    fn sums() {
        let m = DenseMatrix::from_vec(2, 3, vec![1u32, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(m.col_sum(0), 5);
        assert_eq!(m.col_sum(2), 9);
        assert_eq!(m.row_sum(1), 15);
        assert_eq!(m.total(), 21);
    }

    #[test]
    fn clear_resets() {
        let mut m = DenseMatrix::from_vec(2, 2, vec![1u32, 2, 3, 4]).unwrap();
        m.clear();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn memory_bytes() {
        let m = DenseMatrix::<f32>::zeros(10, 100);
        assert_eq!(m.memory_bytes(), 10 * 100 * 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let m = DenseMatrix::<u32>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = DenseMatrix::<u32>::zeros(0, 0);
        assert_eq!(m.iter_rows().count(), 0);
        assert_eq!(m.memory_bytes(), 0);
    }
}
