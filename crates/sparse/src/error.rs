use std::fmt;

/// Errors produced by the sparse-matrix substrate.
///
/// All constructors of [`crate::CsrMatrix`] and [`crate::DenseMatrix`] validate
/// their arguments and report structural problems through this type instead of
/// panicking, so callers can surface corpus/configuration errors gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A column index was outside the declared number of columns.
    ColumnOutOfBounds {
        /// Offending column index.
        col: u32,
        /// Number of columns the matrix was declared with.
        n_cols: usize,
    },
    /// A row index was outside the declared number of rows.
    RowOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Number of rows the matrix was declared with.
        n_rows: usize,
    },
    /// The CSR `row_ptr` array is malformed (not monotone or wrong length).
    MalformedRowPtr {
        /// Human readable detail.
        detail: String,
    },
    /// Parallel arrays (indices/values) had different lengths.
    LengthMismatch {
        /// Length of the index array.
        indices: usize,
        /// Length of the value array.
        values: usize,
    },
    /// Matrix dimensions do not match for the requested operation.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// Column indices within a CSR row are not strictly increasing.
    UnsortedRow {
        /// Row in which the problem was found.
        row: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::ColumnOutOfBounds { col, n_cols } => {
                write!(f, "column index {col} out of bounds for {n_cols} columns")
            }
            SparseError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row index {row} out of bounds for {n_rows} rows")
            }
            SparseError::MalformedRowPtr { detail } => {
                write!(f, "malformed CSR row pointer array: {detail}")
            }
            SparseError::LengthMismatch { indices, values } => write!(
                f,
                "index array has length {indices} but value array has length {values}"
            ),
            SparseError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            SparseError::UnsortedRow { row } => {
                write!(f, "column indices in row {row} are not strictly increasing")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::ColumnOutOfBounds { col: 7, n_cols: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = SparseError::LengthMismatch {
            indices: 1,
            values: 2,
        };
        assert!(e.to_string().contains("length 1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
