//! Sparse and dense matrix substrate for the SaberLDA reproduction.
//!
//! SaberLDA (Li et al., ASPLOS 2017) manipulates three large matrices during
//! training:
//!
//! * the **document–topic count matrix** `A` (`D × K`), which is sparse because a
//!   document only touches a handful of topics — stored here as a
//!   [`CsrMatrix`] (compressed sparse rows);
//! * the **word–topic count matrix** `B` (`V × K`) and its normalised companion
//!   `B̂`, which are randomly accessed and therefore stored as [`DenseMatrix`]
//!   values;
//! * various per-row views ([`SparseRowView`], [`SparseVec`]) used by the
//!   sparsity-aware sampler.
//!
//! The crate also hosts the low-level array routines the GPU kernels in
//! `saber-core` are modelled on: prefix sums ([`prefix`]), least-significant
//! digit radix sort ([`radix`]) and the reference *segmented count*
//! ([`segcount`]) that the shuffle-and-segmented-count (SSC) rebuild is
//! validated against.
//!
//! # Examples
//!
//! ```
//! use saber_sparse::{CsrMatrix, DenseMatrix};
//!
//! // Build the document-topic matrix of the toy corpus in Fig. 1 of the paper.
//! let a = CsrMatrix::<u32>::from_rows(
//!     3,
//!     &[
//!         vec![(2, 2)],          // doc 1: two tokens of topic 3 (0-based 2)
//!         vec![(0, 3), (2, 1)],  // doc 2
//!         vec![(1, 2)],          // doc 3
//!     ],
//! )
//! .unwrap();
//! assert_eq!(a.nnz(), 4);
//! assert_eq!(a.row(1).get(0), Some(3));
//!
//! let mut b = DenseMatrix::<u32>::zeros(5, 3);
//! b[(0, 2)] += 2;
//! assert_eq!(b[(0, 2)], 2);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod csr;
mod dense;
mod error;
pub mod prefix;
pub mod radix;
pub mod segcount;
mod sparse_vec;

pub use csr::{CsrBuilder, CsrMatrix, RowIter};
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use sparse_vec::{SparseRowView, SparseVec};

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
