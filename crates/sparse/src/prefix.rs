//! Prefix-sum utilities.
//!
//! The vanilla multinomial sampler (§2.3 of the paper) and the W-ary sampling
//! tree both reduce to one operation: *find the position of a random value in
//! the prefix-sum array of a probability vector*. These are the scalar
//! reference implementations that the warp-level versions in `saber-gpu-sim`
//! and `saber-core` are validated against.

/// Computes the inclusive prefix sum of `values` (`out[i] = Σ_{j<=i} values[j]`).
///
/// # Examples
///
/// ```
/// let p = saber_sparse::prefix::inclusive_prefix_sum(&[1.0, 2.0, 3.0]);
/// assert_eq!(p, vec![1.0, 3.0, 6.0]);
/// ```
pub fn inclusive_prefix_sum(values: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0.0f32;
    for &v in values {
        acc += v;
        out.push(acc);
    }
    out
}

/// Computes the exclusive prefix sum of `values` (`out[i] = Σ_{j<i} values[j]`).
///
/// # Examples
///
/// ```
/// let p = saber_sparse::prefix::exclusive_prefix_sum(&[1.0, 2.0, 3.0]);
/// assert_eq!(p, vec![0.0, 1.0, 3.0]);
/// ```
pub fn exclusive_prefix_sum(values: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0.0f32;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    out
}

/// In-place inclusive prefix sum.
pub fn inclusive_prefix_sum_in_place(values: &mut [f32]) {
    let mut acc = 0.0f32;
    for v in values.iter_mut() {
        acc += *v;
        *v = acc;
    }
}

/// Inclusive prefix sum over `u32` counts, producing `u32` offsets.
///
/// Used by the segmented-count key extraction (step 2 of Fig. 8).
pub fn inclusive_prefix_sum_u32(values: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u32;
    for &v in values {
        acc += v;
        out.push(acc);
    }
    out
}

/// Exclusive prefix sum over `usize` counts, e.g. to turn per-segment sizes
/// into segment start offsets.
pub fn exclusive_prefix_sum_usize(values: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0usize;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    out
}

/// Finds the position of `u` in the *inclusive* prefix-sum array `prefix`:
/// the smallest index `i` with `u <= prefix[i]`.
///
/// This is "the position of u in the prefix sum array" routine the paper uses
/// in the vanilla sampler (step 3 of §2.3). Returns `prefix.len() - 1` when `u`
/// exceeds the total (which can happen with floating-point round-off when
/// `u` is drawn as `total * uniform(0,1)`), and `0` for an empty array is
/// undefined — callers must not pass an empty prefix array.
///
/// # Panics
///
/// Panics if `prefix` is empty.
///
/// # Examples
///
/// ```
/// use saber_sparse::prefix::{inclusive_prefix_sum, find_in_prefix_sum};
/// let p = inclusive_prefix_sum(&[0.25, 0.125, 0.375, 0.25]);
/// assert_eq!(find_in_prefix_sum(&p, 0.2), 0);
/// assert_eq!(find_in_prefix_sum(&p, 0.3), 1);
/// assert_eq!(find_in_prefix_sum(&p, 0.5), 2);
/// assert_eq!(find_in_prefix_sum(&p, 0.99), 3);
/// ```
pub fn find_in_prefix_sum(prefix: &[f32], u: f32) -> usize {
    assert!(!prefix.is_empty(), "prefix-sum array must not be empty");
    // Binary search for the first element >= u.
    let mut lo = 0usize;
    let mut hi = prefix.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if prefix[mid] < u {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo.min(prefix.len() - 1)
}

/// Linear-scan variant of [`find_in_prefix_sum`]; used as the oracle in
/// property tests and by the warp-kernel reference path.
pub fn find_in_prefix_sum_linear(prefix: &[f32], u: f32) -> usize {
    assert!(!prefix.is_empty(), "prefix-sum array must not be empty");
    for (i, &p) in prefix.iter().enumerate() {
        if u <= p {
            return i;
        }
    }
    prefix.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inclusive_and_exclusive() {
        let v = [1.0f32, 0.0, 2.5, 3.0];
        assert_eq!(inclusive_prefix_sum(&v), vec![1.0, 1.0, 3.5, 6.5]);
        assert_eq!(exclusive_prefix_sum(&v), vec![0.0, 1.0, 1.0, 3.5]);
        let mut w = v;
        inclusive_prefix_sum_in_place(&mut w);
        assert_eq!(w.to_vec(), inclusive_prefix_sum(&v));
    }

    #[test]
    fn integer_prefix_sums() {
        assert_eq!(
            inclusive_prefix_sum_u32(&[0, 0, 1, 0, 1]),
            vec![0, 0, 1, 1, 2]
        );
        assert_eq!(exclusive_prefix_sum_usize(&[3, 1, 4]), vec![0, 3, 4]);
        assert!(inclusive_prefix_sum_u32(&[]).is_empty());
    }

    #[test]
    fn find_positions_match_paper_example() {
        // Fig. 2 of the paper: probabilities 0.25, 0.125, 0.375, 0.25.
        let p = inclusive_prefix_sum(&[0.25, 0.125, 0.375, 0.25]);
        assert_eq!(find_in_prefix_sum(&p, 0.0), 0);
        assert_eq!(find_in_prefix_sum(&p, 0.25), 0);
        assert_eq!(find_in_prefix_sum(&p, 0.250001), 1);
        assert_eq!(find_in_prefix_sum(&p, 0.75), 2);
        assert_eq!(find_in_prefix_sum(&p, 1.0), 3);
        // Beyond the total clamps to the last bucket.
        assert_eq!(find_in_prefix_sum(&p, 2.0), 3);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn find_panics_on_empty() {
        find_in_prefix_sum(&[], 0.5);
    }

    proptest! {
        #[test]
        fn binary_matches_linear(values in proptest::collection::vec(0.0f32..10.0, 1..200), frac in 0.0f32..1.0) {
            let prefix = inclusive_prefix_sum(&values);
            let total = *prefix.last().unwrap();
            let u = frac * total;
            prop_assert_eq!(find_in_prefix_sum(&prefix, u), find_in_prefix_sum_linear(&prefix, u));
        }

        #[test]
        fn prefix_sum_last_is_total(values in proptest::collection::vec(0.0f32..10.0, 1..100)) {
            let prefix = inclusive_prefix_sum(&values);
            let total: f32 = values.iter().sum();
            prop_assert!((prefix.last().unwrap() - total).abs() < 1e-3);
            // Monotone non-decreasing.
            for w in prefix.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
