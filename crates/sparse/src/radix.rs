//! Least-significant-digit radix sort.
//!
//! The SSC count rebuild (Fig. 8 of the paper) starts with a radix sort of the
//! topic assignments of one document segment inside shared memory. These are
//! the host-side reference routines; `saber-core` re-uses them inside the
//! simulated kernels and the property tests compare them against
//! `slice::sort`.

/// Sorts `keys` in place using an 8-bit LSD radix sort.
///
/// Runs in `O(4·n)` passes independent of the key distribution, which is why
/// the paper's in-shared-memory count uses radix rather than comparison
/// sorting.
///
/// # Examples
///
/// ```
/// let mut v = vec![1u32, 8, 5, 1, 3, 5, 5, 3];
/// saber_sparse::radix::radix_sort_u32(&mut v);
/// assert_eq!(v, vec![1, 1, 3, 3, 5, 5, 5, 8]);
/// ```
pub fn radix_sort_u32(keys: &mut Vec<u32>) {
    if keys.len() <= 1 {
        return;
    }
    let max = *keys.iter().max().expect("non-empty");
    let mut scratch = vec![0u32; keys.len()];
    let mut shift = 0u32;
    while shift < 32 && (shift == 0 || (max >> shift) > 0) {
        sort_pass(keys, &mut scratch, shift, |k| k);
        std::mem::swap(keys, &mut scratch);
        shift += 8;
    }
    // `keys` already holds the sorted data because we swapped after each pass.
}

/// Sorts parallel `(keys, payload)` arrays by key using an 8-bit LSD radix
/// sort. The sort is stable, which the SSC shuffle relies on to keep tokens of
/// equal topic adjacent in their original order.
///
/// # Panics
///
/// Panics if `keys.len() != payload.len()`.
pub fn radix_sort_pairs_u32(keys: &mut Vec<u32>, payload: &mut Vec<u32>) {
    assert_eq!(keys.len(), payload.len(), "keys/payload length mismatch");
    if keys.len() <= 1 {
        return;
    }
    let max = *keys.iter().max().expect("non-empty");
    let n = keys.len();
    let mut key_scratch = vec![0u32; n];
    let mut pay_scratch = vec![0u32; n];
    let mut shift = 0u32;
    while shift < 32 && (shift == 0 || (max >> shift) > 0) {
        let mut hist = [0usize; 257];
        for &k in keys.iter() {
            hist[((k >> shift) & 0xff) as usize + 1] += 1;
        }
        for i in 1..257 {
            hist[i] += hist[i - 1];
        }
        for i in 0..n {
            let bucket = ((keys[i] >> shift) & 0xff) as usize;
            let dst = hist[bucket];
            hist[bucket] += 1;
            key_scratch[dst] = keys[i];
            pay_scratch[dst] = payload[i];
        }
        std::mem::swap(keys, &mut key_scratch);
        std::mem::swap(payload, &mut pay_scratch);
        shift += 8;
    }
}

fn sort_pass<F: Fn(u32) -> u32>(src: &[u32], dst: &mut [u32], shift: u32, key_of: F) {
    let mut hist = [0usize; 257];
    for &k in src {
        hist[((key_of(k) >> shift) & 0xff) as usize + 1] += 1;
    }
    for i in 1..257 {
        hist[i] += hist[i - 1];
    }
    for &k in src {
        let bucket = ((key_of(k) >> shift) & 0xff) as usize;
        dst[hist[bucket]] = k;
        hist[bucket] += 1;
    }
}

/// Computes, for every element of `keys`, its destination index if the array
/// were stably sorted by key. This is the "pre-processed pointer array" that
/// the SSC shuffle uses (§3.3): because document ids never change between
/// iterations, the permutation can be computed once and reused.
pub fn stable_sort_permutation(keys: &[u32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    // order[rank] = original index; invert to dest[original index] = rank.
    let mut dest = vec![0usize; keys.len()];
    for (rank, &orig) in order.iter().enumerate() {
        dest[orig] = rank;
    }
    dest
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorts_paper_example() {
        let mut v = vec![1u32, 8, 5, 1, 3, 5, 5, 3];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![1, 1, 3, 3, 5, 5, 5, 8]);
    }

    #[test]
    fn sorts_empty_and_single() {
        let mut v: Vec<u32> = vec![];
        radix_sort_u32(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42u32];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn sorts_large_keys() {
        let mut v = vec![u32::MAX, 0, 1 << 24, 77, 1 << 16];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![0, 77, 1 << 16, 1 << 24, u32::MAX]);
    }

    #[test]
    fn pair_sort_is_stable() {
        let mut keys = vec![2u32, 1, 2, 1];
        let mut payload = vec![10u32, 20, 30, 40];
        radix_sort_pairs_u32(&mut keys, &mut payload);
        assert_eq!(keys, vec![1, 1, 2, 2]);
        assert_eq!(payload, vec![20, 40, 10, 30]);
    }

    #[test]
    fn permutation_is_stable_sort() {
        let keys = vec![3u32, 1, 3, 0];
        let dest = stable_sort_permutation(&keys);
        // Sorted order: index 3 (key 0), 1 (key 1), 0 (key 3), 2 (key 3).
        assert_eq!(dest, vec![2, 1, 3, 0]);
        let mut placed = vec![u32::MAX; 4];
        for (i, &d) in dest.iter().enumerate() {
            placed[d] = keys[i];
        }
        assert_eq!(placed, vec![0, 1, 3, 3]);
    }

    proptest! {
        #[test]
        fn matches_std_sort(mut v in proptest::collection::vec(any::<u32>(), 0..500)) {
            let mut expected = v.clone();
            expected.sort_unstable();
            radix_sort_u32(&mut v);
            prop_assert_eq!(v, expected);
        }

        #[test]
        fn pair_sort_matches_std(keys in proptest::collection::vec(0u32..1000, 0..300)) {
            let payload: Vec<u32> = (0..keys.len() as u32).collect();
            let mut expected: Vec<(u32, u32)> = keys.iter().copied().zip(payload.iter().copied()).collect();
            expected.sort_by_key(|&(k, i)| (k, i));
            let mut k = keys.clone();
            let mut p = payload.clone();
            radix_sort_pairs_u32(&mut k, &mut p);
            let got: Vec<(u32, u32)> = k.into_iter().zip(p).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn permutation_is_a_bijection(keys in proptest::collection::vec(0u32..50, 0..200)) {
            let dest = stable_sort_permutation(&keys);
            let mut seen = vec![false; keys.len()];
            for &d in &dest {
                prop_assert!(d < keys.len());
                prop_assert!(!seen[d]);
                seen[d] = true;
            }
        }
    }
}
