//! Reference *segmented count*.
//!
//! Segmented count is the problem at the heart of rebuilding the
//! document–topic matrix: given tokens grouped into segments (one segment per
//! document) and a topic value per token, produce for every segment the list of
//! distinct topics with their multiplicities (§3.3, Fig. 8 of the paper).
//!
//! This module provides the straightforward host implementation used as the
//! correctness oracle; `saber-core::count::ssc` implements the paper's
//! shuffle-and-segmented-count on the simulated GPU and is property-tested
//! against this one.

use crate::radix::radix_sort_u32;

/// The counts of one segment: parallel `(keys, counts)` arrays with keys in
/// increasing order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentCounts {
    /// Distinct keys (topics) present in the segment, increasing.
    pub keys: Vec<u32>,
    /// Multiplicity of each key.
    pub counts: Vec<u32>,
}

impl SegmentCounts {
    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the segment holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total number of tokens counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }
}

/// Counts distinct values within a single segment using the three-step
/// procedure of Fig. 8: radix sort, adjacent-difference + prefix sum, then
/// scatter/accumulate.
///
/// # Examples
///
/// ```
/// use saber_sparse::segcount::count_segment;
///
/// let counts = count_segment(&[1, 8, 5, 1, 3, 5, 5, 3]);
/// assert_eq!(counts.keys, vec![1, 3, 5, 8]);
/// assert_eq!(counts.counts, vec![2, 2, 3, 1]);
/// ```
pub fn count_segment(values: &[u32]) -> SegmentCounts {
    if values.is_empty() {
        return SegmentCounts::default();
    }
    // (1) radix sort
    let mut sorted = values.to_vec();
    radix_sort_u32(&mut sorted);
    // (2) adjacent difference marks the first occurrence of each key; its
    // prefix sum gives each key's ordinal.
    let mut diff = vec![0u32; sorted.len()];
    for i in 1..sorted.len() {
        diff[i] = u32::from(sorted[i] != sorted[i - 1]);
    }
    let mut ordinal = vec![0u32; sorted.len()];
    let mut acc = 0u32;
    for i in 0..sorted.len() {
        acc += diff[i];
        ordinal[i] = acc;
    }
    let n_keys = (acc + 1) as usize;
    // (3) place keys at their ordinal and accumulate counters.
    let mut keys = vec![0u32; n_keys];
    let mut counts = vec![0u32; n_keys];
    for i in 0..sorted.len() {
        let o = ordinal[i] as usize;
        keys[o] = sorted[i];
        counts[o] += 1;
    }
    SegmentCounts { keys, counts }
}

/// Counts values per segment, where `segment_offsets` delimits segments in
/// `values` (`segment i` spans `segment_offsets[i]..segment_offsets[i+1]`).
///
/// # Panics
///
/// Panics if `segment_offsets` is not a valid monotone offset array ending at
/// `values.len()`.
pub fn segmented_count(values: &[u32], segment_offsets: &[usize]) -> Vec<SegmentCounts> {
    assert!(
        !segment_offsets.is_empty(),
        "segment offsets must contain at least the terminating offset"
    );
    assert_eq!(
        *segment_offsets.last().unwrap(),
        values.len(),
        "last segment offset must equal values.len()"
    );
    let mut out = Vec::with_capacity(segment_offsets.len() - 1);
    for w in segment_offsets.windows(2) {
        assert!(w[0] <= w[1], "segment offsets must be monotone");
        out.push(count_segment(&values[w[0]..w[1]]));
    }
    out
}

/// Naive hash-free oracle for [`count_segment`]: dense histogram over the key
/// range. Used in tests.
pub fn count_segment_dense_oracle(values: &[u32], key_range: usize) -> SegmentCounts {
    let mut hist = vec![0u32; key_range];
    for &v in values {
        hist[v as usize] += 1;
    }
    let mut keys = Vec::new();
    let mut counts = Vec::new();
    for (k, &c) in hist.iter().enumerate() {
        if c > 0 {
            keys.push(k as u32);
            counts.push(c);
        }
    }
    SegmentCounts { keys, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        // Fig. 8: a = [1, 8, 5, 1, 3, 5, 5, 3] → keys [1,3,5,8], counts [2,2,3,1].
        let c = count_segment(&[1, 8, 5, 1, 3, 5, 5, 3]);
        assert_eq!(c.keys, vec![1, 3, 5, 8]);
        assert_eq!(c.counts, vec![2, 2, 3, 1]);
        assert_eq!(c.total(), 8);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn empty_segment() {
        let c = count_segment(&[]);
        assert!(c.is_empty());
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn single_value_segment() {
        let c = count_segment(&[7, 7, 7]);
        assert_eq!(c.keys, vec![7]);
        assert_eq!(c.counts, vec![3]);
    }

    #[test]
    fn segmented_over_documents() {
        // Two documents: [1,1,2] and [0,2].
        let values = [1u32, 1, 2, 0, 2];
        let offsets = [0usize, 3, 5];
        let counts = segmented_count(&values, &offsets);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0].keys, vec![1, 2]);
        assert_eq!(counts[0].counts, vec![2, 1]);
        assert_eq!(counts[1].keys, vec![0, 2]);
        assert_eq!(counts[1].counts, vec![1, 1]);
    }

    #[test]
    fn segmented_with_empty_segments() {
        let values = [5u32, 5];
        let offsets = [0usize, 0, 2, 2];
        let counts = segmented_count(&values, &offsets);
        assert_eq!(counts.len(), 3);
        assert!(counts[0].is_empty());
        assert_eq!(counts[1].counts, vec![2]);
        assert!(counts[2].is_empty());
    }

    #[test]
    #[should_panic(expected = "last segment offset")]
    fn bad_offsets_panic() {
        segmented_count(&[1, 2, 3], &[0, 2]);
    }

    proptest! {
        #[test]
        fn matches_dense_oracle(values in proptest::collection::vec(0u32..64, 0..300)) {
            let got = count_segment(&values);
            let expected = count_segment_dense_oracle(&values, 64);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn totals_preserved(values in proptest::collection::vec(0u32..1000, 0..300), cut in 0usize..300) {
            let cut = cut.min(values.len());
            let offsets = [0, cut, values.len()];
            let segs = segmented_count(&values, &offsets);
            let total: u64 = segs.iter().map(|s| s.total()).sum();
            prop_assert_eq!(total, values.len() as u64);
        }
    }
}
