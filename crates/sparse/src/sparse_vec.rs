use std::fmt;

use crate::{Result, SparseError};

/// A borrowed view over one row of a [`crate::CsrMatrix`].
///
/// The sampler's inner loop (Alg. 2 of the paper) iterates over the non-zero
/// entries of a document's row of the document–topic matrix `A`; this view is
/// the zero-copy handle it receives.
#[derive(Debug, Clone, Copy)]
pub struct SparseRowView<'a, T> {
    indices: &'a [u32],
    values: &'a [T],
}

impl<'a, T> SparseRowView<'a, T> {
    /// Creates a view from parallel index/value slices.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths (this is an internal
    /// invariant of `CsrMatrix`, so a violation indicates a library bug).
    pub fn new(indices: &'a [u32], values: &'a [T]) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "sparse row indices/values length mismatch"
        );
        SparseRowView { indices, values }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when the row stores no entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The column indices of the stored entries.
    pub fn indices(&self) -> &'a [u32] {
        self.indices
    }

    /// The values of the stored entries.
    pub fn values(&self) -> &'a [T] {
        self.values
    }

    /// Iterator over `(column, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &'a T)> + 'a {
        self.indices.iter().copied().zip(self.values.iter())
    }
}

impl<'a, T: Copy> SparseRowView<'a, T> {
    /// Looks up the value stored at `col`, if any, by binary search.
    pub fn get(&self, col: u32) -> Option<T> {
        self.indices
            .binary_search(&col)
            .ok()
            .map(|pos| self.values[pos])
    }
}

impl<'a> SparseRowView<'a, u32> {
    /// Sum of the stored counts (the row total, i.e. the document length when
    /// the view is a row of the document–topic matrix).
    pub fn sum(&self) -> u64 {
        self.values.iter().map(|&v| u64::from(v)).sum()
    }
}

/// An owned sparse vector with `u32` indices.
///
/// Used for scratch rows when rebuilding the document–topic matrix and for the
/// per-token probability vector `P = A_d ⊙ B̂_v` in the sampler.
///
/// # Examples
///
/// ```
/// use saber_sparse::SparseVec;
///
/// let mut v = SparseVec::new();
/// v.push(3, 2.0f32);
/// v.push(8, 0.5f32);
/// assert_eq!(v.nnz(), 2);
/// assert_eq!(v.to_dense(10)[8], 0.5);
/// ```
///
/// Entries must be pushed with strictly increasing indices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec<T> {
    indices: Vec<u32>,
    values: Vec<T>,
}

impl<T> SparseVec<T> {
    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        SparseVec {
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty sparse vector with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SparseVec {
            indices: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Creates a sparse vector from parallel arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LengthMismatch`] if the arrays differ in length.
    pub fn from_parts(indices: Vec<u32>, values: Vec<T>) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        Ok(SparseVec { indices, values })
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Appends an entry. Indices are expected to be pushed in strictly
    /// increasing order; this is checked in debug builds only.
    pub fn push(&mut self, index: u32, value: T) {
        debug_assert!(
            self.indices.last().is_none_or(|&last| index > last),
            "indices must be pushed in strictly increasing order"
        );
        self.indices.push(index);
        self.values.push(value);
    }

    /// Clears all entries, keeping allocations.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Borrow as a [`SparseRowView`].
    pub fn as_view(&self) -> SparseRowView<'_, T> {
        SparseRowView::new(&self.indices, &self.values)
    }

    /// The stored column indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterator over `(index, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.indices.iter().copied().zip(self.values.iter())
    }
}

impl<T: Copy + Default + PartialEq> SparseVec<T> {
    /// Builds a sparse vector from a dense slice, dropping `T::default()`
    /// entries.
    pub fn from_dense(dense: &[T]) -> Self {
        let mut v = SparseVec::new();
        for (i, &x) in dense.iter().enumerate() {
            if x != T::default() {
                v.push(i as u32, x);
            }
        }
        v
    }

    /// Expands to a dense vector of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if any stored index is `>= len`.
    pub fn to_dense(&self, len: usize) -> Vec<T> {
        let mut out = vec![T::default(); len];
        for (i, &v) in self.iter() {
            out[i as usize] = v;
        }
        out
    }
}

impl<T: fmt::Display> fmt::Display for SparseVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, (i, v)) in self.indices.iter().zip(self.values.iter()).enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl<T> FromIterator<(u32, T)> for SparseVec<T> {
    fn from_iter<I: IntoIterator<Item = (u32, T)>>(iter: I) -> Self {
        let mut v = SparseVec::new();
        for (i, x) in iter {
            v.indices.push(i);
            v.values.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_view() {
        let mut v = SparseVec::new();
        v.push(1, 10u32);
        v.push(5, 20);
        v.push(9, 30);
        assert_eq!(v.nnz(), 3);
        let view = v.as_view();
        assert_eq!(view.get(5), Some(20));
        assert_eq!(view.get(2), None);
        assert_eq!(view.sum(), 60);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0u32, 3, 0, 0, 7, 1];
        let sparse = SparseVec::from_dense(&dense);
        assert_eq!(sparse.nnz(), 3);
        assert_eq!(sparse.to_dense(6), dense);
    }

    #[test]
    fn from_parts_checks_lengths() {
        assert!(SparseVec::from_parts(vec![1, 2], vec![1.0f32]).is_err());
        let v = SparseVec::from_parts(vec![1, 2], vec![1.0f32, 2.0]).unwrap();
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn display_formats_pairs() {
        let v: SparseVec<u32> = vec![(0, 1u32), (4, 2)].into_iter().collect();
        assert_eq!(v.to_string(), "{0: 1, 4: 2}");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut v = SparseVec::with_capacity(8);
        v.push(0, 1u32);
        v.clear();
        assert!(v.is_empty());
        assert!(v.indices().is_empty());
    }

    #[test]
    fn view_iteration() {
        let v: SparseVec<f32> = vec![(2, 0.5f32), (7, 0.25)].into_iter().collect();
        let pairs: Vec<(u32, f32)> = v.as_view().iter().map(|(i, &x)| (i, x)).collect();
        assert_eq!(pairs, vec![(2, 0.5), (7, 0.25)]);
    }
}
