//! Dependency-free distributed request tracing for the SaberLDA stack.
//!
//! One serving request can cross a queue, several worker threads, a shard
//! fan-out and — with remote transports — machine boundaries. Aggregate
//! histograms say *that* the p99 moved; this crate records *where inside
//! one request* the time went: a [`TraceId`] minted at ingress (or parsed
//! from an `X-Saber-Trace` header), a [`TraceBuilder`] that grows a span
//! tree as the request moves through parse → queue-wait → fan-out → merge
//! → encode, and a per-process [`TraceRing`] plus [`SlowCapture`] the HTTP
//! layer exposes via `GET /trace/recent`.
//!
//! Design constraints, in the spirit of the rest of the workspace:
//!
//! * **Dependency-free** — ids, hex codecs and clocks are hand-rolled over
//!   `std` only.
//! * **Never on the hot path's critical section** — the ring's writers use
//!   `try_lock` on a single slot and *drop the sample* rather than block a
//!   serving thread; the write cursor itself is a lock-free atomic.
//! * **Zero cost to correctness** — tracing only reads clocks and copies
//!   ids; it never feeds seeds, ordering or float paths, so θ is
//!   bit-identical with tracing on or off (pinned by
//!   `tests/tracing.rs`).
//!
//! Span ids are dense small integers local to one builder; stitching a
//! remote subtree (spans returned inline in an `/infer-partial` response)
//! re-numbers it under the local parent via [`TraceBuilder::attach`], so
//! no cross-process id coordination is needed.
//!
//! The wire format of the `X-Saber-Trace` header is
//! `<trace-id:16 lowercase hex>` or `<trace-id>-<parent-span:16 hex>`;
//! see `docs/OBSERVABILITY.md` for the full header and span taxonomy
//! reference.
//!
//! # Example
//!
//! ```
//! use saber_trace::{TraceBuilder, TraceContext, TraceId};
//!
//! let ctx = TraceContext::parse("00000000000000ff-0000000000000001").unwrap();
//! let mut trace = TraceBuilder::new(ctx.trace_id().unwrap());
//! let root = trace.begin(None, "ingress");
//! let parse = trace.begin(Some(root), "parse");
//! trace.end(parse);
//! trace.end(root);
//! let done = trace.finish();
//! assert_eq!(done.trace_id.to_hex(), "00000000000000ff");
//! assert_eq!(done.spans.len(), 2);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A 64-bit, non-zero request trace identifier.
///
/// Rendered as 16 lowercase hex digits in headers and JSON. Minted ids mix
/// a per-process random base (from the system clock at first use) with an
/// atomic counter through a SplitMix64 finaliser, so concurrent mints never
/// collide within a process and collide across processes only with the
/// birthday probability of 64 random bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// SplitMix64 finaliser: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-process entropy base every minted id mixes in.
fn mint_base() -> u64 {
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5ABE_51DA);
        splitmix64(nanos ^ (std::process::id() as u64) << 32)
    })
}

impl TraceId {
    /// Mints a fresh, process-unique trace id.
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mixed = splitmix64(mint_base() ^ n);
        TraceId(if mixed == 0 { 1 } else { mixed })
    }

    /// Wraps a raw non-zero id (e.g. one parsed off the wire).
    /// Returns `None` for zero, which is reserved for "untraced".
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        (raw != 0).then_some(TraceId(raw))
    }

    /// The raw 64-bit value (never zero).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The 16-lowercase-hex-digit wire form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-hex-digit wire form; `None` for anything else
    /// (wrong length, non-hex, or the reserved zero id).
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().and_then(TraceId::from_raw)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The propagated half of a trace: which trace a unit of work belongs to
/// and which span is its parent.
///
/// A disabled context (`TraceContext::disabled()`) is the "not traced"
/// sentinel every internal call path can pass cheaply: it carries no id,
/// transports skip the `X-Saber-Trace` header for it, and span recording
/// is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    id: Option<TraceId>,
    parent: u64,
}

impl TraceContext {
    /// The untraced sentinel: no id, no header, no spans.
    pub fn disabled() -> TraceContext {
        TraceContext {
            id: None,
            parent: 0,
        }
    }

    /// A context rooted at the top of trace `id` (no parent span).
    pub fn root(id: TraceId) -> TraceContext {
        TraceContext {
            id: Some(id),
            parent: 0,
        }
    }

    /// A context for work parented under span `parent` of trace `id`.
    pub fn child(id: TraceId, parent: u64) -> TraceContext {
        TraceContext {
            id: Some(id),
            parent,
        }
    }

    /// Whether this context carries a live trace.
    pub fn enabled(&self) -> bool {
        self.id.is_some()
    }

    /// The trace id, when enabled.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.id
    }

    /// The parent span id (0 = root / unknown).
    pub fn parent_span(&self) -> u64 {
        self.parent
    }

    /// The `X-Saber-Trace` header value (`trace-parent`, both 16 hex
    /// digits), or `None` for a disabled context.
    pub fn header_value(&self) -> Option<String> {
        self.id
            .map(|id| format!("{:016x}-{:016x}", id.raw(), self.parent))
    }

    /// Parses an `X-Saber-Trace` header: `<trace>` or `<trace>-<parent>`,
    /// each 16 hex digits. `None` for malformed values (the caller mints a
    /// fresh id instead).
    pub fn parse(value: &str) -> Option<TraceContext> {
        let value = value.trim();
        match value.split_once('-') {
            None => TraceId::parse_hex(value).map(TraceContext::root),
            Some((trace, parent)) => {
                let id = TraceId::parse_hex(trace)?;
                if parent.len() != 16 {
                    return None;
                }
                let parent = u64::from_str_radix(parent, 16).ok()?;
                Some(TraceContext::child(id, parent))
            }
        }
    }
}

/// A timestamped annotation inside a span (`"skew retry 1"`,
/// `"epoch observed 3"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Microseconds since the owning trace's origin.
    pub at_us: u64,
    /// Human-readable message.
    pub message: String,
}

/// One node of a span tree: a named, timed unit of work.
///
/// `start_us` is measured from the *recording process's* trace origin;
/// spans stitched in from another machine keep their relative internal
/// offsets but are re-based onto the local clock by
/// [`TraceBuilder::attach`], so cross-machine offsets are approximate
/// (bounded by the submit/observe skew), while durations are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, dense and local to one assembled trace (root spans of a
    /// builder start at 1).
    pub id: u64,
    /// Parent span id within the same trace; `None` for a root.
    pub parent: Option<u64>,
    /// Span name (see the taxonomy in `docs/OBSERVABILITY.md`).
    pub name: String,
    /// Start offset in microseconds from the trace origin.
    pub start_us: u64,
    /// Duration in microseconds (0 until the span is ended).
    pub duration_us: u64,
    /// Timestamped annotations.
    pub events: Vec<SpanEvent>,
}

/// A finished, assembled trace: the span tree of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// End-to-end duration: the latest span end observed, in microseconds.
    pub total_us: u64,
    /// All spans, in recording order (parents precede children).
    pub spans: Vec<SpanRecord>,
}

/// Grows the span tree of one in-flight request.
///
/// Not thread-safe by design: all router-side work for a request happens
/// on its connection thread, and timing measured on *other* threads
/// (worker queue-wait, shard processes) comes back as data — atomics or
/// inline wire spans — and is recorded here by the owning thread.
#[derive(Debug)]
pub struct TraceBuilder {
    id: TraceId,
    origin: Instant,
    spans: Vec<SpanRecord>,
}

impl TraceBuilder {
    /// Starts a builder for trace `id`; the clock origin is now.
    pub fn new(id: TraceId) -> TraceBuilder {
        TraceBuilder {
            id,
            origin: Instant::now(),
            spans: Vec::with_capacity(8),
        }
    }

    /// The trace id being built.
    pub fn trace_id(&self) -> TraceId {
        self.id
    }

    /// Microseconds elapsed since the trace origin.
    pub fn elapsed_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Opens a span starting now; returns its id. Pass the returned id to
    /// [`TraceBuilder::end`] to close it.
    pub fn begin(&mut self, parent: Option<u64>, name: impl Into<String>) -> u64 {
        self.push_span(parent, name, self.elapsed_us(), 0)
    }

    /// Closes span `span`, setting its duration from its start to now.
    /// Unknown ids are ignored.
    pub fn end(&mut self, span: u64) {
        let now = self.elapsed_us();
        if let Some(record) = self.span_mut(span) {
            record.duration_us = now.saturating_sub(record.start_us);
        }
    }

    /// Records a fully-measured span (timing observed elsewhere, e.g. a
    /// worker thread's queue-wait reported through an atomic cell).
    pub fn push_span(
        &mut self,
        parent: Option<u64>,
        name: impl Into<String>,
        start_us: u64,
        duration_us: u64,
    ) -> u64 {
        let id = self.spans.len() as u64 + 1;
        self.spans.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            start_us,
            duration_us,
            events: Vec::new(),
        });
        id
    }

    /// Appends a timestamped event to span `span` (ignored for unknown
    /// ids).
    pub fn event(&mut self, span: u64, message: impl Into<String>) {
        let at_us = self.elapsed_us();
        if let Some(record) = self.span_mut(span) {
            record.events.push(SpanEvent {
                at_us,
                message: message.into(),
            });
        }
    }

    /// Stitches a remote subtree under local span `parent`: every remote
    /// span is re-numbered into this builder's id space, remote roots are
    /// re-parented onto `parent`, and all offsets shift by `base_us` (the
    /// local elapsed time when the remote work was submitted).
    pub fn attach(&mut self, parent: u64, remote: &[SpanRecord], base_us: u64) {
        let mut mapping: Vec<(u64, u64)> = Vec::with_capacity(remote.len());
        for span in remote {
            let mapped_parent = span
                .parent
                .and_then(|p| mapping.iter().find(|&&(old, _)| old == p))
                .map(|&(_, new)| new);
            let new_id = self.push_span(
                Some(mapped_parent.unwrap_or(parent)),
                span.name.clone(),
                span.start_us.saturating_add(base_us),
                span.duration_us,
            );
            if let Some(record) = self.span_mut(new_id) {
                record.events = span
                    .events
                    .iter()
                    .map(|e| SpanEvent {
                        at_us: e.at_us.saturating_add(base_us),
                        message: e.message.clone(),
                    })
                    .collect();
            }
            mapping.push((span.id, new_id));
        }
    }

    /// The spans recorded so far.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Total microseconds spent in spans named `name` (used to attribute
    /// e.g. aggregate queue-wait inside one request).
    pub fn named_total_us(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_us)
            .sum()
    }

    /// Finalises the trace. Still-open spans keep duration 0; the total is
    /// the latest span end observed.
    pub fn finish(self) -> Trace {
        let total_us = self
            .spans
            .iter()
            .map(|s| s.start_us.saturating_add(s.duration_us))
            .max()
            .unwrap_or(0);
        Trace {
            trace_id: self.id,
            total_us,
            spans: self.spans,
        }
    }

    fn span_mut(&mut self, span: u64) -> Option<&mut SpanRecord> {
        // Ids are dense (index + 1), so lookup is O(1) without indexing
        // panics.
        span.checked_sub(1)
            .and_then(|i| self.spans.get_mut(i as usize))
    }
}

/// A fixed-size ring of the most recent finished traces in this process.
///
/// The write cursor is a lock-free atomic; each slot is guarded by its own
/// mutex that writers only `try_lock` — a slot contended by a concurrent
/// reader or writer drops the incoming sample instead of blocking the
/// serving thread. Readers take slot locks briefly (clone out, release).
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Mutex<Option<Trace>>]>,
    cursor: AtomicUsize,
}

impl TraceRing {
    /// A ring holding up to `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records a finished trace. Never blocks: a contended slot drops the
    /// sample.
    pub fn push(&self, trace: Trace) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        if let Some(slot) = self.slots.get(at) {
            if let Ok(mut slot) = slot.try_lock() {
                *slot = Some(trace);
            }
        }
    }

    /// The recorded traces, newest first. Skips slots a writer holds at
    /// the instant of the scan.
    pub fn recent(&self) -> Vec<Trace> {
        let n = self.slots.len();
        let head = self.cursor.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(n);
        for back in 1..=n {
            // Walk backwards from the most recently claimed slot.
            let at = (head.wrapping_add(n).wrapping_sub(back)) % n;
            if let Some(slot) = self.slots.get(at) {
                if let Ok(slot) = slot.try_lock() {
                    if let Some(trace) = slot.as_ref() {
                        out.push(trace.clone());
                    }
                }
            }
        }
        out
    }
}

/// Keeps the `keep` worst (slowest) traces at or above a latency
/// threshold — the "what were my bad requests" capture that survives ring
/// wrap-around.
#[derive(Debug)]
pub struct SlowCapture {
    threshold_us: u64,
    keep: usize,
    worst: Mutex<Vec<Trace>>,
}

impl SlowCapture {
    /// Captures up to `keep` traces whose total is ≥ `threshold`.
    pub fn new(threshold: Duration, keep: usize) -> SlowCapture {
        SlowCapture {
            threshold_us: threshold.as_micros() as u64,
            keep,
            worst: Mutex::new(Vec::with_capacity(keep.min(64))),
        }
    }

    /// The capture threshold.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Offers a finished trace; it is cloned in only when it qualifies
    /// (at or above the threshold and within the worst `keep`).
    pub fn offer(&self, trace: &Trace) {
        if self.keep == 0 || trace.total_us < self.threshold_us {
            return;
        }
        let mut worst = self.worst.lock().unwrap_or_else(|e| e.into_inner());
        let at = worst
            .iter()
            .position(|t| t.total_us < trace.total_us)
            .unwrap_or(worst.len());
        if at >= self.keep {
            return;
        }
        worst.insert(at, trace.clone());
        worst.truncate(self.keep);
    }

    /// The captured traces, slowest first.
    pub fn worst(&self) -> Vec<Trace> {
        self.worst.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a.raw(), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn hex_round_trip() {
        let id = TraceId::from_raw(0xff).unwrap();
        assert_eq!(id.to_hex(), "00000000000000ff");
        assert_eq!(TraceId::parse_hex("00000000000000ff"), Some(id));
        assert_eq!(TraceId::parse_hex("ff"), None);
        assert_eq!(TraceId::parse_hex("000000000000000g"), None);
        assert_eq!(TraceId::parse_hex("0000000000000000"), None);
        assert_eq!(format!("{id}"), "00000000000000ff");
    }

    #[test]
    fn header_round_trip() {
        let ctx = TraceContext::child(TraceId::from_raw(0xab).unwrap(), 3);
        let header = ctx.header_value().unwrap();
        assert_eq!(header, "00000000000000ab-0000000000000003");
        assert_eq!(TraceContext::parse(&header), Some(ctx));
        let root = TraceContext::parse("00000000000000ab").unwrap();
        assert_eq!(root.parent_span(), 0);
        assert!(root.enabled());
        assert_eq!(TraceContext::parse("xyz"), None);
        assert_eq!(TraceContext::parse("00000000000000ab-zz"), None);
        assert!(!TraceContext::disabled().enabled());
        assert_eq!(TraceContext::disabled().header_value(), None);
    }

    #[test]
    fn builder_grows_a_tree() {
        let mut b = TraceBuilder::new(TraceId::from_raw(7).unwrap());
        let root = b.begin(None, "ingress");
        let child = b.begin(Some(root), "parse");
        b.event(child, "hello");
        b.end(child);
        b.end(root);
        let trace = b.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(root));
        assert_eq!(trace.spans[1].events.len(), 1);
        assert!(trace.total_us >= trace.spans[1].start_us);
    }

    #[test]
    fn attach_renumbers_and_rebases_a_remote_subtree() {
        let mut remote = TraceBuilder::new(TraceId::from_raw(9).unwrap());
        let r = remote.push_span(None, "infer-partial", 0, 40);
        remote.push_span(Some(r), "queue-wait", 0, 10);
        remote.push_span(Some(r), "handler", 10, 30);
        let remote_spans = remote.finish().spans;

        let mut local = TraceBuilder::new(TraceId::from_raw(7).unwrap());
        let root = local.begin(None, "ingress");
        let shard = local.begin(Some(root), "shard 0");
        local.attach(shard, &remote_spans, 100);
        let spans = local.spans();
        assert_eq!(spans.len(), 5);
        // The remote root hangs off the local shard span...
        assert_eq!(spans[2].name, "infer-partial");
        assert_eq!(spans[2].parent, Some(shard));
        assert_eq!(spans[2].start_us, 100);
        // ...and its children keep their internal structure, re-numbered.
        assert_eq!(spans[3].parent, Some(spans[2].id));
        assert_eq!(spans[4].parent, Some(spans[2].id));
        assert_eq!(spans[4].start_us, 110);
        assert_eq!(local.named_total_us("queue-wait"), 10);
    }

    #[test]
    fn ring_wraps_and_reports_newest_first() {
        let ring = TraceRing::new(2);
        assert_eq!(ring.capacity(), 2);
        for total in [1u64, 2, 3] {
            ring.push(Trace {
                trace_id: TraceId::from_raw(total).unwrap(),
                total_us: total,
                spans: Vec::new(),
            });
        }
        let recent = ring.recent();
        assert_eq!(
            recent.iter().map(|t| t.total_us).collect::<Vec<_>>(),
            vec![3, 2]
        );
    }

    #[test]
    fn slow_capture_keeps_the_worst_above_threshold() {
        let capture = SlowCapture::new(Duration::from_micros(100), 2);
        for total in [50u64, 150, 120, 400, 130] {
            capture.offer(&Trace {
                trace_id: TraceId::from_raw(total).unwrap(),
                total_us: total,
                spans: Vec::new(),
            });
        }
        let worst = capture.worst();
        assert_eq!(
            worst.iter().map(|t| t.total_us).collect::<Vec<_>>(),
            vec![400, 150]
        );
        let off = SlowCapture::new(Duration::from_micros(0), 0);
        off.offer(&Trace {
            trace_id: TraceId::from_raw(1).unwrap(),
            total_us: 10,
            spans: Vec::new(),
        });
        assert!(off.worst().is_empty());
    }
}
