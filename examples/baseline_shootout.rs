//! Baseline shoot-out: convergence of every system on one corpus.
//!
//! A miniature version of the paper's Fig. 11: SaberLDA (simulated GTX 1080)
//! against the dense GPU baseline and the three CPU baselines, all trained on
//! the same corpus and evaluated with the same held-out likelihood.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example baseline_shootout
//! ```

use saberlda::corpus::presets::DatasetPreset;
use saberlda::{
    DenseGibbsLda, DeviceSpec, EscaCpuLda, FTreeLda, HeldOutEvaluator, LdaTrainer, SaberLda,
    SaberLdaConfig, WarpLdaMh,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = DatasetPreset::NyTimes.synthetic_spec(10_000).generate(17);
    let evaluator = HeldOutEvaluator::new(&corpus, 2)?;
    let k = 200;
    let alpha = 50.0 / k as f32;
    let beta = 0.01;
    let iterations = 15;

    let config = SaberLdaConfig::builder()
        .n_topics(k)
        .n_iterations(iterations)
        .n_chunks(2)
        .seed(4)
        .build()?;
    let saber = SaberLda::new(config, &corpus)?;

    let mut systems: Vec<Box<dyn LdaTrainer>> = vec![
        Box::new(saber),
        Box::new(DenseGibbsLda::new(
            &corpus,
            k,
            alpha,
            beta,
            4,
            DeviceSpec::gtx_1080(),
        )),
        Box::new(EscaCpuLda::new(&corpus, k, alpha, beta, 4)),
        Box::new(FTreeLda::new(&corpus, k, alpha, beta, 4)),
        Box::new(WarpLdaMh::new(&corpus, k, alpha, beta, 4)),
    ];

    println!(
        "corpus: {}",
        saberlda::corpus::stats::CorpusStats::of(&corpus)
    );
    println!("{iterations} iterations each, K = {k}\n");
    println!(
        "{:<34} {:>14} {:>18}",
        "system", "time (model s)", "final held-out LL"
    );
    let mut rows = Vec::new();
    for system in systems.iter_mut() {
        let mut elapsed = 0.0;
        for _ in 0..iterations {
            elapsed += system.step().seconds;
        }
        let ll = evaluator.log_likelihood(system.word_topic_prob(), system.alpha());
        println!("{:<34} {:>14.3} {:>18.4}", system.name(), elapsed, ll);
        rows.push((system.name(), elapsed, ll));
    }

    let saber_time = rows[0].1;
    println!("\nspeedups over SaberLDA's modelled time:");
    for (name, time, _) in rows.iter().skip(1) {
        println!("  {name:<34} {:>6.1}x slower", time / saber_time);
    }
    Ok(())
}
