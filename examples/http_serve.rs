//! HTTP serving demo: train a model, stand up the HTTP/1.1 front-end, and
//! exercise every endpoint over real TCP — including deterministic replay
//! via the `X-Saber-Seed` header and the `/stats` latency percentiles.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example http_serve
//! ```
//!
//! By default the example binds an OS-assigned port, drives a short demo
//! workload against itself, prints the equivalent `curl` commands, and
//! exits. To keep the server up for interactive `curl`ing:
//!
//! ```text
//! SABER_HTTP_HOLD=1 SABER_HTTP_ADDR=127.0.0.1:8080 \
//!     cargo run --release --example http_serve
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::serve::http::{HttpConfig, HttpServer};
use saberlda::serve::{ServeConfig, SnapshotSampler, TopicServer};
use saberlda::{SaberLda, SaberLdaConfig};

/// One blocking HTTP request over a fresh connection; returns the raw
/// response (status line, headers, body).
fn http(addr: std::net::SocketAddr, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const K: usize = 8;

    // 1. Train a model on a synthetic corpus with an attached vocabulary so
    //    the raw-token `/infer` path and named `/top-words` work.
    let corpus = SyntheticSpec {
        n_docs: 400,
        vocab_size: 800,
        mean_doc_len: 60.0,
        n_topics: K,
        attach_vocabulary: true,
        ..SyntheticSpec::default()
    }
    .generate(11);
    let config = SaberLdaConfig::builder()
        .n_topics(K)
        .n_iterations(10)
        .seed(3)
        .build()?;
    let mut lda = SaberLda::new(config, &corpus)?;
    lda.train();
    println!(
        "trained: {} docs, {} tokens, K = {K}",
        corpus.n_docs(),
        corpus.n_tokens()
    );

    // 2. Publish to a TopicServer and put the HTTP listener in front of it.
    let server = Arc::new(TopicServer::from_model(
        lda.model(),
        ServeConfig {
            n_workers: 4,
            max_batch: 16,
            sampler: SnapshotSampler::WaryTree,
            ..ServeConfig::default()
        },
    )?);
    let addr = std::env::var("SABER_HTTP_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let http_server = HttpServer::bind(
        &addr,
        Arc::clone(&server),
        corpus.vocabulary().cloned(),
        HttpConfig::default(),
    )?;
    let addr = http_server.local_addr();
    println!("listening on http://{addr}\n");
    println!("try it with curl:");
    println!("  curl http://{addr}/healthz");
    println!("  curl -X POST http://{addr}/infer -d '{{\"words\": [0, 8, 16], \"seed\": 7}}'");
    println!("  curl -X POST http://{addr}/infer -H 'X-Saber-Seed: 7' -d '{{\"tokens\": [\"w00000\", \"w00008\"], \"oov\": \"skip\"}}'");
    println!("  curl 'http://{addr}/top-words?topic=0&n=6'");
    println!("  curl 'http://{addr}/similar?a=0,8,16&b=1,9,17&seed=5'");
    println!("  curl http://{addr}/stats\n");

    if std::env::var("SABER_HTTP_HOLD").is_ok() {
        println!("SABER_HTTP_HOLD set: serving until killed (ctrl-c)");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    // 3. Demo workload over real TCP. Health first:
    let health = http(
        addr,
        "GET /healthz HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n",
    )?;
    println!("GET /healthz -> {}", body_of(&health));

    // Word-id inference with a seed in the body.
    let doc = corpus.document(0).words();
    let payload = format!(
        "{{\"words\":[{}],\"seed\":42}}",
        doc.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
    );
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let first = http(addr, &request)?;
    println!("POST /infer (doc 0, seed 42) -> {}", body_of(&first));

    // Deterministic replay: the same request again is bit-identical.
    let replay = http(addr, &request)?;
    assert_eq!(
        body_of(&first),
        body_of(&replay),
        "equal seeds must replay bit-identically"
    );
    println!("replay: second POST with seed 42 returned an identical body");

    // Raw tokens with the seed supplied via header instead of body.
    let payload = r#"{"tokens":["w00000","w00001","definitely-not-a-word"],"oov":"skip"}"#;
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: demo\r\nX-Saber-Seed: 7\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    println!(
        "POST /infer (raw tokens) -> {}",
        body_of(&http(addr, &request)?)
    );

    // A little traffic so /stats has percentiles to report.
    for seed in 0..32u64 {
        let payload = format!("{{\"words\":[0,8,16,24],\"seed\":{seed}}}");
        let request = format!(
            "POST /infer HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        );
        http(addr, &request)?;
    }
    let top = http(
        addr,
        "GET /top-words?topic=0&n=6 HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n",
    )?;
    println!("GET /top-words?topic=0&n=6 -> {}", body_of(&top));
    let similar = http(
        addr,
        "GET /similar?a=0,8,16&b=1,9,17&seed=5 HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n",
    )?;
    println!("GET /similar -> {}", body_of(&similar));
    let stats = http(
        addr,
        "GET /stats HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n",
    )?;
    println!("GET /stats -> {}", body_of(&stats));

    http_server.shutdown();
    Arc::try_unwrap(server)
        .expect("http server released its handle")
        .shutdown();
    println!("\nlistener and worker pool drained; bye");
    Ok(())
}
