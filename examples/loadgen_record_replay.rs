//! Record-then-replay demo: capture real HTTP traffic into a `SABRTRACE`
//! file, then replay it at a controlled rate against every topology and
//! print the benchmark table.
//!
//! The full loadgen loop in one program:
//!
//! 1. synthesise a request stream from a corpus preset;
//! 2. drive it through a live HTTP ingress with the opt-in
//!    [`RequestRecorder`](saberlda::serve::RequestRecorder) hook enabled,
//!    capturing words, seeds and true arrival offsets;
//! 3. freeze the capture to a `SABRTRACE` file and load it back;
//! 4. replay the file open-loop against the direct server, a two-shard
//!    local router and a two-shard real-TCP remote fleet;
//! 5. render the report markdown.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example loadgen_record_replay
//! ```

use std::time::Duration;

use saber_loadgen::replay::{
    record_over_http, replay, replay_model, RateProfile, ReplayConfig, Topology, TopologyHandle,
};
use saber_loadgen::report::{BenchReport, TopologyReport, TraceSummary};
use saber_loadgen::synth::synthesize_trace;
use saber_loadgen::trace::RequestTrace;
use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::serve::ServeConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic synthetic request stream.
    let stream = synthesize_trace(&SyntheticSpec::small_test(), 120, 42);
    let model = replay_model(stream.vocab_size() as usize, 16, 7)?;

    // 2–3. Record it at a real HTTP ingress, freeze, reload.
    println!("recording {} requests over HTTP…", stream.len());
    let recorded = record_over_http(&stream, &model, &ServeConfig::default(), stream.len())?;
    let path = std::env::temp_dir().join("loadgen_demo.sabrtrace");
    recorded.save(&path)?;
    let trace = RequestTrace::load(&path)?;
    std::fs::remove_file(&path).ok();
    println!(
        "captured {} requests ({} tokens) into SABRTRACE\n",
        trace.len(),
        trace.total_tokens()
    );

    // 4. Replay the capture open-loop at 400 QPS on all three topologies.
    let rate = RateProfile::Fixed { qps: 400.0 };
    let config = ReplayConfig {
        threads: 4,
        deadline: Duration::from_secs(5),
        collect_thetas: false,
    };
    let mut rows = Vec::new();
    for topology in [
        Topology::Direct,
        Topology::LocalShards(2),
        Topology::RemoteShards(2),
    ] {
        let label = topology.label();
        println!("replaying on {label}…");
        let handle = TopologyHandle::build(topology, &model, &ServeConfig::default())?;
        let outcome = replay(&handle.backend(), &trace, &rate, &config);
        let server = handle.server_stats();
        handle.shutdown();
        rows.push(TopologyReport::from_outcome(&label, &outcome, &server));
    }

    // 5. The report, as the CLI would write it.
    let report = BenchReport {
        profile: "demo".to_string(),
        rate: rate.label(),
        trace: TraceSummary {
            source: "recorded".to_string(),
            requests: trace.len() as u64,
            tokens: trace.total_tokens(),
            vocab_size: trace.vocab_size(),
        },
        topologies: rows,
    };
    println!("\n{}", report.to_markdown());
    Ok(())
}
