//! News-archive topic modelling: the paper's motivating text-analysis
//! scenario (§1) on a scaled NYTimes-shaped corpus.
//!
//! Demonstrates the workflow a downstream user of a real corpus would follow:
//! load (or here, synthesise) the corpus, split train/held-out, train with a
//! larger topic count, inspect convergence and topic quality, and report the
//! per-phase time breakdown that Fig. 9 is made of.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example news_topics
//! ```

use saberlda::corpus::presets::DatasetPreset;
use saberlda::corpus::split::train_test_split;
use saberlda::{HeldOutEvaluator, SaberLda, SaberLdaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // NYTimes-shaped synthetic corpus, scaled ~3000x down from Table 3 so the
    // example finishes in seconds. Use `DatasetPreset::synthetic_spec(scale)`
    // with a smaller scale (or the UCI parser) for bigger runs.
    let spec = DatasetPreset::NyTimes.synthetic_spec(3_000);
    let corpus = spec.generate(11);
    println!(
        "NYTimes-like corpus: {}",
        saberlda::corpus::stats::CorpusStats::of(&corpus)
    );

    let split = train_test_split(&corpus, 0.1, 3)?;
    println!(
        "train: {} docs / {} tokens, held-out: {} docs",
        split.train.n_docs(),
        split.train.n_tokens(),
        split.test.n_docs()
    );

    let k = 200;
    let config = SaberLdaConfig::builder()
        .n_topics(k)
        .n_iterations(20)
        .n_chunks(3)
        .n_workers(4)
        .seed(1)
        .build()?;
    let evaluator = HeldOutEvaluator::new(&split.test, 5)?;
    let mut lda = SaberLda::new(config, &split.train)?;
    let report = lda.train_with_eval(&evaluator, 4);

    println!("\nconvergence (held-out log-likelihood per token):");
    for (t, ll) in report.convergence_curve() {
        println!("  {t:>8.3}s  {ll:.4}");
    }

    let phases = report.phase_totals();
    println!(
        "\nper-phase device time over {} iterations (cf. Fig. 9):",
        report.iterations.len()
    );
    println!("  sampling       {:>9.4}s", phases.sampling);
    println!("  A update       {:>9.4}s", phases.a_update);
    println!("  preprocessing  {:>9.4}s", phases.preprocessing);
    println!("  transfer       {:>9.4}s", phases.transfer);
    println!(
        "\nthroughput: {:.1} Mtoken/s on a simulated {}",
        report.mean_throughput_mtokens_per_s(),
        lda.config().device.name
    );

    // Topic coherence proxy: top words should concentrate probability.
    let mass: f32 = (0..k.min(5))
        .map(|topic| {
            lda.model()
                .top_words(topic, 10)
                .iter()
                .map(|&(_, p)| p)
                .sum::<f32>()
        })
        .sum::<f32>()
        / k.min(5) as f32;
    println!("mean probability mass of the top-10 words of the first 5 topics: {mass:.3}");
    Ok(())
}
