//! Quickstart: train SaberLDA on a small synthetic corpus and print the
//! discovered topics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::corpus::Vocabulary;
use saberlda::{HeldOutEvaluator, SaberLda, SaberLdaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic corpus with planted topic structure (stand-in for a real
    //    bag-of-words file; see `saberlda::corpus::uci` to load NYTimes/PubMed).
    let spec = SyntheticSpec {
        n_docs: 400,
        vocab_size: 1_000,
        mean_doc_len: 80.0,
        n_topics: 10,
        attach_vocabulary: true,
        ..SyntheticSpec::default()
    };
    let corpus = spec.generate(2024);
    println!(
        "corpus: {} documents, {} tokens, vocabulary {}",
        corpus.n_docs(),
        corpus.n_tokens(),
        corpus.vocab_size()
    );

    // 2. Configure SaberLDA: K topics, α, the paper's β = 0.01.
    let config = SaberLdaConfig::builder()
        .n_topics(10)
        .alpha(0.1)
        .n_iterations(30)
        .n_chunks(2)
        .seed(7)
        .build()?;

    // 3. Train, evaluating held-out likelihood every 5 iterations.
    let evaluator = HeldOutEvaluator::new(&corpus, 1)?;
    let mut lda = SaberLda::new(config, &corpus)?;
    let report = lda.train_with_eval(&evaluator, 5);

    println!(
        "\ntrained {} iterations, simulated device time {:.3}s, throughput {:.1} Mtoken/s",
        report.iterations.len(),
        report.total_seconds(),
        report.mean_throughput_mtokens_per_s()
    );
    for (t, ll) in report.convergence_curve() {
        println!("  t = {t:>8.3}s   held-out log-likelihood/token = {ll:.4}");
    }

    // 4. Show the top words of the first few topics.
    let fallback = Vocabulary::synthetic(corpus.vocab_size());
    let vocab = corpus.vocabulary().unwrap_or(&fallback);
    println!("\ntop words per topic:");
    for k in 0..4 {
        let words: Vec<String> = lda
            .model()
            .top_words(k, 8)
            .into_iter()
            .map(|(w, _)| vocab.word(w).unwrap_or("?").to_string())
            .collect();
        println!("  topic {k}: {}", words.join(" "));
    }

    // 5. Persist the model for later reuse.
    let path = std::env::temp_dir().join("saberlda_quickstart_model.bin");
    saberlda::core::model_io::save_model_file(lda.model(), &path)?;
    println!("\nmodel saved to {}", path.display());
    Ok(())
}
