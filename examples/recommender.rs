//! Recommendation-style LDA: users as "documents", items as "words".
//!
//! The paper motivates large topic counts partly through recommender systems
//! that must model hundreds of millions of users (§1, citing Ahmed et al.).
//! This example builds a synthetic user–item interaction corpus with planted
//! interest groups, trains SaberLDA on it, and uses the learned topics to
//! produce per-user item recommendations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::{LdaTrainer, SaberLda, SaberLdaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 600 users, 800 items, ~50 interactions per user, 12 latent interest
    // groups. doc_topic_alpha is small: a user has few interests.
    let spec = SyntheticSpec {
        n_docs: 600,
        vocab_size: 800,
        mean_doc_len: 50.0,
        n_topics: 12,
        doc_topic_alpha: 0.05,
        topic_word_beta: 0.03,
        ..SyntheticSpec::default()
    };
    let interactions = spec.generate(99);
    println!(
        "interaction corpus: {} users, {} items, {} interactions",
        interactions.n_docs(),
        interactions.vocab_size(),
        interactions.n_tokens()
    );

    let config = SaberLdaConfig::builder()
        .n_topics(12)
        .alpha(0.08)
        .n_iterations(25)
        .n_chunks(2)
        .seed(5)
        .build()?;
    let mut lda = SaberLda::new(config, &interactions)?;
    let report = lda.train();
    println!(
        "trained in {:.3}s simulated device time ({:.1} Mtoken/s)",
        report.total_seconds(),
        report.mean_throughput_mtokens_per_s()
    );

    // Recommend items for a few users: score(item) = Σ_k θ_uk · B̂_item,k,
    // where θ_u is estimated from the user's observed interactions.
    let bhat = lda.word_topic_prob();
    let k = lda.n_topics();
    for user in [0usize, 1, 2] {
        let history = interactions.document(user).words();
        // Fold in the user's history to get interest proportions.
        let mut theta = vec![1.0f64 / k as f64; k];
        for _ in 0..10 {
            let mut counts = vec![0.0f64; k];
            for &item in history {
                let row = bhat.row(item as usize);
                let resp: Vec<f64> = theta
                    .iter()
                    .zip(row.iter())
                    .map(|(&t, &b)| t * b as f64)
                    .collect();
                let z: f64 = resp.iter().sum();
                if z > 0.0 {
                    for (c, r) in counts.iter_mut().zip(resp.iter()) {
                        *c += r / z;
                    }
                }
            }
            let denom = history.len() as f64 + 0.08 * k as f64;
            for (t, c) in theta.iter_mut().zip(counts.iter()) {
                *t = (c + 0.08) / denom;
            }
        }
        // Score unseen items.
        let seen: std::collections::HashSet<u32> = history.iter().copied().collect();
        let mut scored: Vec<(u32, f64)> = (0..interactions.vocab_size() as u32)
            .filter(|i| !seen.contains(i))
            .map(|item| {
                let row = bhat.row(item as usize);
                let s: f64 = theta
                    .iter()
                    .zip(row.iter())
                    .map(|(&t, &b)| t * b as f64)
                    .sum();
                (item, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = scored
            .iter()
            .take(5)
            .map(|&(i, _)| format!("item{i}"))
            .collect();
        println!(
            "user {user}: {} interactions, dominant interest group {} → recommend {}",
            history.len(),
            theta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0),
            top.join(", ")
        );
    }
    Ok(())
}
