//! Cross-machine sharded serving demo: one shard **process** per port.
//!
//! This is the `saber-shardd` deployment shape behind ISSUE 5: each shard
//! is a separate OS process that boots a [`TopicServer`] from a snapshot
//! slice saved on disk (no retraining) and exposes the shard protocol over
//! HTTP (`/infer-partial`, `/shard-info`, `/publish-shard`,
//! `/commit-epoch`). A `ShardRouter<HttpTransport>` in the parent process
//! fans documents out over real localhost TCP, checks the answers against
//! an in-process `ShardRouter<LocalTransport>` reference, performs a
//! remote all-or-nothing epoch publication, and shuts the fleet down.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example saber_shardd
//! ```
//!
//! The same binary *is* the shard daemon: the parent re-invokes itself as
//!
//! ```text
//! saber_shardd --shard <snapshot-file> <global-start> <global-end>
//! ```
//!
//! which is exactly how you would run real shards on real machines (one
//! snapshot slice file and one listening address per host).

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use saberlda::serve::{
    FoldInKind, FoldInParams, HttpConfig, HttpServer, HttpTransport, InferenceSnapshot,
    ServeConfig, ShardPlan, ShardRouter, TopicServer,
};
use saberlda::LdaModel;

const VOCAB: usize = 120;
const K: usize = 8;
const N_SHARDS: usize = 2;

/// The one serving configuration shared by every shard process and the
/// router — fold-in parameters must agree across the fleet (the router
/// refuses a shard that disagrees).
fn serve_config() -> ServeConfig {
    ServeConfig {
        n_workers: 2,
        fold_in: FoldInParams {
            kind: FoldInKind::Em,
            ..FoldInParams::default()
        },
        ..ServeConfig::default()
    }
}

/// A deterministic "trained" model: every word mixes two topics so the
/// differential check exercises real cross-shard mass.
fn model(shift: usize) -> LdaModel {
    let mut model = LdaModel::new(VOCAB, K, 0.08, 0.01).unwrap();
    for v in 0..VOCAB {
        model.word_topic_mut()[(v, (v + shift) % K)] = 30;
        model.word_topic_mut()[(v, (v + shift + 1) % K)] = 10 + (v % 7) as u32;
    }
    model.refresh_probabilities();
    model
}

/// Shard-daemon mode: boot from the snapshot file and serve until killed.
fn run_shard(snapshot_path: &str, start: u32, end: u32) -> Result<(), Box<dyn std::error::Error>> {
    let snapshot = InferenceSnapshot::load_file(snapshot_path)?;
    let server = Arc::new(TopicServer::start(snapshot, serve_config())?);
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        None,
        HttpConfig {
            shard_range: Some((start, end)),
            ..HttpConfig::default()
        },
    )?;
    // The parent parses this line to learn the OS-assigned port.
    println!("LISTENING {}", http.local_addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

struct ShardChild {
    process: Child,
    addr: String,
}

impl Drop for ShardChild {
    /// Kill-on-drop: a failed differential check (or any early `?`) must
    /// not orphan shard processes that would otherwise sleep forever —
    /// the CI smoke run relies on unconditional cleanup.
    fn drop(&mut self) {
        let _ = self.process.kill();
        let _ = self.process.wait();
    }
}

fn spawn_shard(snapshot_path: &std::path::Path, start: u32, end: u32) -> ShardChild {
    let exe = std::env::current_exe().expect("own executable path");
    let mut process = Command::new(exe)
        .arg("--shard")
        .arg(snapshot_path)
        .arg(start.to_string())
        .arg(end.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .expect("failed to spawn shard process");
    let stdout = process.stdout.take().expect("child stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("shard exited before listening")
            .expect("shard stdout");
        if let Some(addr) = line.strip_prefix("LISTENING ") {
            break addr.to_string();
        }
    };
    ShardChild { process, addr }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--shard") {
        let (path, start, end) = (&args[2], args[3].parse()?, args[4].parse()?);
        return run_shard(path, start, end);
    }

    // 1. "Train" a model and cut the plan.
    let plan = ShardPlan::uniform(VOCAB, N_SHARDS)?;
    let snapshot = InferenceSnapshot::from_model(&model(0), serve_config().sampler);
    println!(
        "model: V = {VOCAB}, K = {K}; plan: {} shards of ~{} words",
        plan.n_shards(),
        VOCAB / N_SHARDS
    );

    // 2. Persist one snapshot slice per shard — what you would ship to
    //    each machine — and spawn one shard process per slice.
    let dir = std::env::temp_dir().join(format!("saber_shardd_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut children = Vec::new();
    for (s, range) in plan.ranges().enumerate() {
        let path = dir.join(format!("shard-{s}.snap"));
        snapshot.shard(range.clone()).save_file(&path)?;
        let child = spawn_shard(&path, range.start, range.end);
        println!(
            "  shard {s}: words {}..{} -> pid {} on {}",
            range.start,
            range.end,
            child.process.id(),
            child.addr
        );
        children.push(child);
    }

    // 3. A router over HTTP transports, plus an in-process reference.
    let transports = children
        .iter()
        .map(|c| HttpTransport::connect(c.addr.as_str()))
        .collect::<Result<Vec<_>, _>>()?;
    let remote = ShardRouter::with_transports(plan.clone(), transports, serve_config())?;
    let reference = ShardRouter::start(snapshot, plan, serve_config())?;

    // 4. Differential check: EM fan-out over TCP is bit-identical to the
    //    in-process fleet (θ and partial counts round-trip JSON exactly).
    let docs: Vec<Vec<u32>> = (0..8)
        .map(|i| (0..20).map(|j| ((i * 31 + j * 7) % VOCAB) as u32).collect())
        .collect();
    for (i, doc) in docs.iter().enumerate() {
        let a = reference.infer_topics(doc.clone(), i as u64)?;
        let b = remote.infer_topics(doc.clone(), i as u64)?;
        assert_eq!(
            a.theta.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.theta.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "remote fan-out diverged from the in-process fleet"
        );
    }
    println!(
        "remote == local on {} documents (bit-identical EM)",
        docs.len()
    );

    // 5. Remote epoch publication: stage + commit over the wire, all or
    //    nothing. Both fleets move from epoch 1 to 2 in lockstep.
    let refreshed = InferenceSnapshot::from_model(&model(1), serve_config().sampler);
    let epoch = remote.publish(refreshed.clone())?;
    reference.publish(refreshed)?;
    let after = remote.infer_topics(docs[0].clone(), 99)?;
    println!(
        "published epoch {epoch} over HTTP; next answer served from epoch {}",
        after.snapshot_version
    );
    assert_eq!(after.snapshot_version, 2);

    // 6. Fleet-wide observability through the same transports.
    let merged = remote.stats();
    let routed = remote.router_stats();
    println!(
        "routed {} documents as {:?} shard requests ({} total, {} skew retries)",
        routed.requests, routed.shard_requests, merged.requests, routed.skew_retries
    );

    // 7. Clean shutdown: close the transports, then stop the shard
    //    processes (kill-on-drop) and remove their slice files.
    remote.shutdown();
    reference.shutdown();
    for (s, child) in children.into_iter().enumerate() {
        drop(child);
        println!("  shard {s} stopped");
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("fleet drained and shut down cleanly");
    Ok(())
}
