//! Scaling study: throughput versus the number of topics.
//!
//! The paper's headline systems claim is that SaberLDA's throughput drops by
//! only ~17% when the number of topics grows from 1,000 to 10,000, because the
//! sparsity-aware sampler's per-token cost is `O(K_d)` rather than `O(K)`.
//! This example sweeps K on a fixed corpus for SaberLDA and for the dense
//! `O(K)` baseline, showing the qualitative difference.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use saberlda::corpus::presets::DatasetPreset;
use saberlda::{DenseGibbsLda, DeviceSpec, LdaTrainer, SaberLda, SaberLdaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = DatasetPreset::NyTimes.synthetic_spec(6_000).generate(3);
    println!(
        "corpus: {}",
        saberlda::corpus::stats::CorpusStats::of(&corpus)
    );
    println!(
        "\n{:>8} {:>22} {:>22}",
        "K", "SaberLDA (Mtoken/s)", "dense O(K) (Mtoken/s)"
    );

    let mut saber_tps = Vec::new();
    let mut dense_tps = Vec::new();
    for k in [250usize, 500, 1000, 2000, 4000] {
        let config = SaberLdaConfig::builder()
            .n_topics(k)
            .n_iterations(3)
            .n_chunks(2)
            .seed(1)
            .build()?;
        let mut saber = SaberLda::new(config, &corpus)?;
        let report = saber.train();
        let saber_tp = report.mean_throughput_mtokens_per_s();

        let mut dense =
            DenseGibbsLda::new(&corpus, k, 50.0 / k as f32, 0.01, 1, DeviceSpec::gtx_1080());
        let mut dense_seconds = 0.0;
        let mut dense_tokens = 0u64;
        for _ in 0..2 {
            let out = dense.step();
            dense_seconds += out.seconds;
            dense_tokens += out.tokens;
        }
        let dense_tp = dense_tokens as f64 / dense_seconds / 1e6;

        saber_tps.push(saber_tp);
        dense_tps.push(dense_tp);
        println!("{k:>8} {saber_tp:>22.1} {dense_tp:>22.1}");
    }

    let retained = |tps: &[f64]| 100.0 * tps.last().unwrap() / tps.first().unwrap();
    println!(
        "\nthroughput retained across the 16x topic sweep: SaberLDA {:.0}%, dense baseline {:.0}%",
        retained(&saber_tps),
        retained(&dense_tps)
    );
    println!(
        "The paper reports SaberLDA losing only 17% of its throughput from K = 1,000 to 10,000,\n\
         while O(K) systems slow down roughly in proportion to K."
    );
    Ok(())
}
