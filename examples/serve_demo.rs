//! Serving demo: train a model, stand up a `TopicServer`, answer concurrent
//! inference traffic, and hot-swap in a refreshed model mid-stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::sync::Arc;

use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::corpus::OovPolicy;
use saberlda::serve::similarity::hellinger_distance;
use saberlda::serve::{ServeConfig, SnapshotSampler, TopicServer};
use saberlda::{SaberLda, SaberLdaConfig, Vocabulary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const K: usize = 8;

    // 1. Train a first model version on a synthetic corpus with planted
    //    topics (stand-in for a real corpus; see `saberlda::corpus::uci`).
    let corpus = SyntheticSpec {
        n_docs: 400,
        vocab_size: 800,
        mean_doc_len: 60.0,
        n_topics: K,
        attach_vocabulary: true,
        ..SyntheticSpec::default()
    }
    .generate(11);
    let config = SaberLdaConfig::builder()
        .n_topics(K)
        .n_iterations(10)
        .seed(3)
        .build()?;
    let mut lda = SaberLda::new(config, &corpus)?;
    lda.train();
    println!(
        "trained v1: {} docs, {} tokens, K = {K}",
        corpus.n_docs(),
        corpus.n_tokens()
    );

    // 2. Publish it to a serving pool: 4 workers, micro-batches of up to 16
    //    requests, W-ary-tree snapshots (cheap to rebuild on every publish).
    let serve_config = ServeConfig {
        n_workers: 4,
        max_batch: 16,
        sampler: SnapshotSampler::WaryTree,
        ..ServeConfig::default()
    };
    let server = Arc::new(TopicServer::from_model(lda.model(), serve_config)?);
    let snapshot = server.snapshot();
    println!(
        "published snapshot v{} (~{:.0} KB resident)",
        snapshot.version(),
        snapshot.memory_bytes() as f64 / 1024.0
    );

    // 3. Concurrent inference: 4 client threads fire batches of requests
    //    built from training documents. Each request carries its own seed,
    //    so any client can replay any answer bit-for-bit.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            let words: Vec<Vec<u32>> = (0..50)
                .map(|i| {
                    corpus
                        .document((c * 50 + i) % corpus.n_docs())
                        .words()
                        .to_vec()
                })
                .collect();
            std::thread::spawn(move || {
                let mut served = 0u64;
                for (i, doc) in words.into_iter().enumerate() {
                    let seed = (c * 1000 + i) as u64;
                    let response = server.infer_topics(doc, seed).expect("serving failed");
                    assert_eq!(response.theta.len(), K);
                    served += 1;
                }
                served
            })
        })
        .collect();
    let served: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let stats = server.stats();
    println!(
        "served {served} concurrent requests in {} micro-batches (mean batch size {:.1}, {} tokens)",
        stats.batches,
        stats.mean_batch_size(),
        stats.tokens
    );

    // 4. Deterministic replay: same words + same seed = bit-identical θ.
    let doc = corpus.document(0).words().to_vec();
    let a = server.infer_topics(doc.clone(), 42)?;
    let b = server.infer_topics(doc, 42)?;
    assert_eq!(a.theta, b.theta);
    println!("replay check: request with seed 42 is bit-identical on retry");

    // 5. Hot swap: keep training the same trainer, publish the refreshed
    //    model. Serving never pauses; later responses report the new
    //    snapshot version.
    for _ in 0..5 {
        lda.iterate();
    }
    let v2 = server.publish_model(lda.model());
    let doc = corpus.document(1).words().to_vec();
    let after = server.infer_topics(doc.clone(), 7)?;
    println!(
        "hot-swapped to snapshot v{v2}; next answer served from v{}",
        after.snapshot_version
    );

    // 6. The query API beyond raw θ: top words per topic, raw-token
    //    documents with OOV handling, and similarity in topic space.
    let fallback = Vocabulary::synthetic(corpus.vocab_size());
    let vocab = corpus.vocabulary().unwrap_or(&fallback);
    for k in 0..3 {
        let words: Vec<String> = server
            .top_words(k, 6)
            .into_iter()
            .map(|(w, _)| vocab.word(w).unwrap_or("?").to_string())
            .collect();
        println!("topic {k}: {}", words.join(" "));
    }

    let raw: Vec<String> = corpus
        .document(2)
        .words()
        .iter()
        .take(12)
        .map(|&w| vocab.word(w).unwrap_or("?").to_string())
        .chain(["notaword".to_string()])
        .collect();
    let raw_response = server.infer_raw(&raw, vocab, OovPolicy::Skip, 9)?;
    println!(
        "raw-token inference: dominant topic {}, {} OOV token(s) skipped",
        raw_response.dominant_topic(),
        raw_response.n_oov
    );

    let x = server.infer_topics(corpus.document(3).words().to_vec(), 1)?;
    let y = server.infer_topics(corpus.document(4).words().to_vec(), 1)?;
    println!(
        "doc 3 vs doc 4 Hellinger distance in topic space: {:.3}",
        hellinger_distance(&x.theta, &y.theta)
    );

    Arc::try_unwrap(server)
        .expect("all clients joined")
        .shutdown();
    println!("server drained and shut down cleanly");
    Ok(())
}
