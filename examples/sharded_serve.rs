//! Sharded serving demo: split a model across a fleet of `TopicServer`s by
//! memory budget, route documents through a merging `ShardRouter`, verify
//! the answers against an unsharded server, and hot-swap the entire shard
//! set atomically.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sharded_serve
//! ```

use std::sync::Arc;

use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::serve::{
    FoldInKind, FoldInParams, ServeConfig, ShardPlan, ShardRouter, SnapshotSampler, TopicServer,
};
use saberlda::{InferenceSnapshot, SaberLda, SaberLdaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const K: usize = 16;
    const VOCAB: usize = 3000;

    // 1. Train a model big enough that sharding is worth demonstrating.
    let corpus = SyntheticSpec {
        n_docs: 600,
        vocab_size: VOCAB,
        mean_doc_len: 80.0,
        n_topics: K,
        ..SyntheticSpec::default()
    }
    .generate(17);
    let config = SaberLdaConfig::builder()
        .n_topics(K)
        .n_iterations(8)
        .seed(5)
        .build()?;
    let mut lda = SaberLda::new(config, &corpus)?;
    lda.train();

    // 2. Size the snapshot and cut a plan: pretend each worker pool may
    //    spend at most a quarter of the full model's footprint.
    let sampler = SnapshotSampler::WaryTree;
    let full = InferenceSnapshot::from_model(lda.model(), sampler);
    let budget = full.memory_bytes() / 4 + 1;
    let plan = ShardPlan::by_budget(VOCAB, K, sampler, budget)?;
    println!(
        "full snapshot ~{:.0} KB; budget {:.0} KB/shard -> {} shards",
        full.memory_bytes() as f64 / 1024.0,
        budget as f64 / 1024.0,
        plan.n_shards()
    );
    for s in 0..plan.n_shards() {
        let range = plan.range(s);
        println!(
            "  shard {s}: words {}..{} (~{:.0} KB)",
            range.start,
            range.end,
            plan.shard_bytes(s, K, sampler) as f64 / 1024.0
        );
    }

    // 3. Stand up the fleet under the exact (EM) merge, plus an unsharded
    //    reference server to check equivalence against.
    let serve_config = ServeConfig {
        n_workers: 2,
        fold_in: FoldInParams {
            kind: FoldInKind::Em,
            ..FoldInParams::default()
        },
        ..ServeConfig::default()
    };
    let router = Arc::new(ShardRouter::start(full, plan, serve_config)?);
    let reference = TopicServer::from_model(lda.model(), serve_config)?;

    // 4. Concurrent traffic through the router, with a live equivalence
    //    check: sharded θ must match unsharded θ to 1e-5 L∞.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let router = Arc::clone(&router);
            let docs: Vec<Vec<u32>> = (0..40)
                .map(|i| {
                    corpus
                        .document((c * 40 + i) % corpus.n_docs())
                        .words()
                        .to_vec()
                })
                .collect();
            std::thread::spawn(move || {
                for (i, doc) in docs.into_iter().enumerate() {
                    let response = router
                        .infer_topics(doc, (c * 1000 + i) as u64)
                        .expect("routing failed");
                    assert_eq!(response.theta.len(), K);
                }
            })
        })
        .collect();
    let mut worst = 0.0f32;
    for (i, doc_id) in [0usize, 7, 23, 99].into_iter().enumerate() {
        let doc = corpus.document(doc_id).words().to_vec();
        let sharded = router.infer_topics(doc.clone(), i as u64)?;
        let direct = reference.infer_topics(doc, i as u64)?;
        let linf = sharded
            .theta
            .iter()
            .zip(direct.theta.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        worst = worst.max(linf);
        assert!(linf <= 1e-5, "sharded inference diverged: L∞ = {linf}");
    }
    for client in clients {
        client.join().unwrap();
    }
    println!("sharded == unsharded on sampled documents (worst L∞ = {worst:.2e})");

    // 5. Whole-shard-set hot swap: keep training, publish once — every
    //    shard moves to the next epoch together, and no in-flight answer
    //    mixes the two model versions.
    for _ in 0..4 {
        lda.iterate();
    }
    let epoch = router.publish_model(lda.model())?;
    let after = router.infer_topics(corpus.document(1).words().to_vec(), 7)?;
    println!(
        "published epoch {epoch} to all {} shards; next answer served from epoch {}",
        router.n_shards(),
        after.snapshot_version
    );

    // 6. Aggregated observability: per-shard counters merge into one view
    //    (histograms included), plus router-level epoch/retry counters.
    let merged = router.stats();
    let routed = router.router_stats();
    println!(
        "routed {} documents as {} shard requests (p50 {:.0} µs, p99 {:.0} µs, {} skew retries)",
        routed.requests,
        merged.requests,
        merged.latency.p50().unwrap_or(0.0),
        merged.latency.p99().unwrap_or(0.0),
        routed.skew_retries
    );
    for (s, stats) in router.shard_stats().into_iter().enumerate() {
        println!(
            "  shard {s}: {} requests, {} tokens, mean batch {:.1}",
            stats.requests,
            stats.tokens,
            stats.mean_batch_size()
        );
    }

    reference.shutdown();
    Arc::try_unwrap(router)
        .expect("all clients joined")
        .shutdown();
    println!("fleet drained and shut down cleanly");
    Ok(())
}
