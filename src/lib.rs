//! # SaberLDA — a Rust reproduction
//!
//! This is the umbrella crate of a from-scratch Rust reproduction of
//! *SaberLDA: Sparsity-Aware Learning of Topic Models on GPUs* (Li, Chen,
//! Chen, Zhu — ASPLOS 2017). It re-exports the public API of the workspace
//! crates so downstream users need a single dependency:
//!
//! * [`corpus`] — corpora, synthetic dataset generators, UCI parser,
//!   train/held-out splitting ([`saber_corpus`]);
//! * [`sparse`] — CSR/dense matrix substrate ([`saber_sparse`]);
//! * [`gpu`] — the deterministic GPU execution model ([`saber_gpu_sim`]);
//! * [`core`] — the SaberLDA trainer, kernels, W-ary tree, SSC, evaluation
//!   ([`saber_core`]);
//! * [`baselines`] — the comparison systems of the paper's Fig. 11
//!   ([`saber_baselines`]);
//! * [`serve`] — batched online topic inference with hot-swappable model
//!   snapshots and an HTTP/1.1 network front-end ([`saber_serve`]).
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quick start
//!
//! ```
//! use saberlda::{SaberLda, SaberLdaConfig};
//! use saberlda::corpus::synthetic::SyntheticSpec;
//!
//! // A small synthetic corpus with planted topics.
//! let corpus = SyntheticSpec::small_test().generate(42);
//!
//! // Train 5 iterations of 8-topic LDA with the paper's defaults.
//! let config = SaberLdaConfig::builder()
//!     .n_topics(8)
//!     .n_iterations(5)
//!     .seed(0)
//!     .build()?;
//! let mut lda = SaberLda::new(config, &corpus)?;
//! let report = lda.train();
//!
//! println!(
//!     "throughput: {:.1} Mtoken/s (simulated GTX 1080)",
//!     report.mean_throughput_mtokens_per_s()
//! );
//! let top = lda.model().top_words(0, 5);
//! assert_eq!(top.len(), 5);
//! # Ok::<(), saberlda::core::SaberError>(())
//! ```

#![deny(missing_docs)]

/// Corpus handling: [`saber_corpus`] re-exported.
pub use saber_corpus as corpus;

/// Sparse/dense matrix substrate: [`saber_sparse`] re-exported.
pub use saber_sparse as sparse;

/// GPU execution model: [`saber_gpu_sim`] re-exported.
pub use saber_gpu_sim as gpu;

/// SaberLDA core: [`saber_core`] re-exported.
pub use saber_core as core;

/// Baseline systems: [`saber_baselines`] re-exported.
pub use saber_baselines as baselines;

/// Online serving: [`saber_serve`] re-exported.
pub use saber_serve as serve;

/// Distributed request tracing: [`saber_trace`] re-exported.
pub use saber_trace as trace;

pub use saber_baselines::{DenseGibbsLda, EscaCpuLda, FTreeLda, WarpLdaMh};
pub use saber_core::{
    HeldOutEvaluator, IterationStats, LdaModel, LdaTrainer, OptLevel, PhaseTimes, SaberLda,
    SaberLdaConfig, TrainingReport,
};
pub use saber_corpus::{Corpus, Document, OovPolicy, TokenList, Vocabulary};
pub use saber_gpu_sim::DeviceSpec;
pub use saber_serve::{
    FoldInKind, HttpConfig, HttpServer, InferRequest, InferResponse, InferenceBackend,
    InferenceSnapshot, ServeConfig, ShardPlan, ShardRouter, SnapshotSampler, TopicServer,
};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let spec = crate::corpus::synthetic::SyntheticSpec::small_test();
        assert!(spec.n_docs > 0);
        let device = crate::DeviceSpec::gtx_1080();
        assert_eq!(device.warp_size, 32);
    }
}
