//! Cross-crate integration tests: SaberLDA versus the baseline systems on a
//! shared corpus and evaluator (the Fig. 11 pipeline at miniature scale).

use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::{
    DenseGibbsLda, DeviceSpec, EscaCpuLda, FTreeLda, HeldOutEvaluator, LdaTrainer, SaberLda,
    SaberLdaConfig, WarpLdaMh,
};

fn corpus() -> saberlda::Corpus {
    SyntheticSpec {
        n_docs: 150,
        vocab_size: 300,
        mean_doc_len: 45.0,
        n_topics: 6,
        ..SyntheticSpec::default()
    }
    .generate(21)
}

fn all_systems(corpus: &saberlda::Corpus, k: usize) -> Vec<Box<dyn LdaTrainer>> {
    let alpha = 0.2f32;
    let beta = 0.01f32;
    let config = SaberLdaConfig::builder()
        .n_topics(k)
        .alpha(alpha)
        .n_iterations(10)
        .n_chunks(2)
        .seed(6)
        .build()
        .unwrap();
    vec![
        Box::new(SaberLda::new(config, corpus).unwrap()),
        Box::new(DenseGibbsLda::new(
            corpus,
            k,
            alpha,
            beta,
            6,
            DeviceSpec::gtx_1080(),
        )),
        Box::new(EscaCpuLda::new(corpus, k, alpha, beta, 6)),
        Box::new(FTreeLda::new(corpus, k, alpha, beta, 6)),
        Box::new(WarpLdaMh::new(corpus, k, alpha, beta, 6)),
    ]
}

#[test]
fn every_system_improves_held_out_likelihood() {
    let corpus = corpus();
    let evaluator = HeldOutEvaluator::new(&corpus, 3).unwrap();
    for mut system in all_systems(&corpus, 6) {
        let before = evaluator.log_likelihood(system.word_topic_prob(), system.alpha());
        for _ in 0..8 {
            system.step();
        }
        let after = evaluator.log_likelihood(system.word_topic_prob(), system.alpha());
        assert!(
            after > before,
            "{} did not improve held-out likelihood ({before:.4} -> {after:.4})",
            system.name()
        );
    }
}

#[test]
fn modelled_iteration_times_preserve_the_papers_ordering() {
    // The qualitative Fig. 11 ordering at K = 1000:
    // SaberLDA (GPU, sparse) is faster per unit of modelled time than the
    // dense GPU baseline and than the sparsity-aware CPU systems.
    // A corpus with a realistic tokens-per-word ratio (T/V ≈ 100) so that the
    // per-word B̂ staging cost is amortised, as it is on the paper's corpora.
    let corpus = SyntheticSpec {
        n_docs: 500,
        vocab_size: 300,
        mean_doc_len: 80.0,
        n_topics: 10,
        ..SyntheticSpec::default()
    }
    .generate(30);
    let k = 1000;
    let mut times = std::collections::HashMap::new();
    for mut system in all_systems(&corpus, k) {
        let mut total = 0.0;
        for _ in 0..2 {
            total += system.step().seconds;
        }
        times.insert(system.name(), total);
    }
    let saber = times
        .iter()
        .find(|(name, _)| name.contains("SaberLDA"))
        .map(|(_, &t)| t)
        .unwrap();
    for (name, &t) in &times {
        if name.contains("SaberLDA") || name.contains("WarpLDA") {
            continue;
        }
        assert!(
            t > saber,
            "{name} ({t:.5}s) should be slower per iteration than SaberLDA ({saber:.5}s)"
        );
    }
    // The dense O(K) GPU baseline should be the slowest of all at K = 1000.
    let dense = times
        .iter()
        .find(|(name, _)| name.contains("BIDMach"))
        .map(|(_, &t)| t)
        .unwrap();
    assert!(
        dense > 2.0 * saber,
        "dense baseline ({dense:.5}s) should be several times slower than SaberLDA ({saber:.5}s)"
    );
}

#[test]
fn systems_expose_consistent_model_shapes() {
    let corpus = corpus();
    for system in all_systems(&corpus, 6) {
        let bhat = system.word_topic_prob();
        assert_eq!(bhat.rows(), corpus.vocab_size(), "{}", system.name());
        assert_eq!(bhat.cols(), 6, "{}", system.name());
        assert_eq!(system.n_topics(), 6);
        for k in 0..6 {
            let s: f32 = (0..bhat.rows()).map(|v| bhat[(v, k)]).sum();
            assert!(
                (s - 1.0).abs() < 1e-3,
                "{}: column {k} sums to {s}",
                system.name()
            );
        }
    }
}
