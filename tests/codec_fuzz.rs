//! Round-trip and malformed-input fuzz for the two codecs load depends
//! on: the `X-Saber-Trace` header (ISSUE 7) and the `SABRTRACE` trace
//! format (ISSUE 8).
//!
//! The contracts pinned here:
//!
//! * every header a context prints parses back to the same context;
//! * garbage header bytes **degrade to untraced** — `parse` returns
//!   `None`, and a live HTTP server still answers `200` with the same θ
//!   it would have produced without the header (never a 4xx/500);
//! * every `SABRTRACE` encode/decode round-trip is byte-exact;
//! * truncated or corrupted trace bytes produce an error, never a panic
//!   and never a silently shortened trace;
//! * every `SABRDELTA` encode/decode round-trip is byte-exact, and the
//!   strict decoder rejects truncation, trailing bytes, out-of-range or
//!   non-increasing row ids and non-advancing epochs (ISSUE 10) — the
//!   live `/publish-delta` seam must never panic on hostile input.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use saber_loadgen::trace::{RequestTrace, TraceRequest};
use saberlda::serve::{HttpConfig, HttpServer, ServeConfig, TopicServer};
use saberlda::trace::{TraceContext, TraceId};
use saberlda::LdaModel;

// ---------------------------------------------------------------- header

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printed headers parse back to the identical context, for any live
    /// trace id and any parent span.
    #[test]
    fn trace_header_roundtrips(raw in 1u64..u64::MAX, parent in 0u64..u64::MAX) {
        let id = TraceId::from_raw(raw).expect("nonzero raw id is valid");
        let context = TraceContext::child(id, parent);
        let header = context.header_value().expect("enabled context has a header");
        prop_assert_eq!(TraceContext::parse(&header), Some(context));
    }

    /// Arbitrary bytes never panic the parser; anything that parses must
    /// re-print to a header that parses to the same context (no lossy
    /// accepts).
    #[test]
    fn garbage_headers_degrade_to_untraced(bytes in vec(any::<u8>(), 0..48usize)) {
        let value = String::from_utf8_lossy(&bytes).into_owned();
        if let Some(context) = TraceContext::parse(&value) {
            let reprinted = context.header_value().expect("parsed context is enabled");
            prop_assert_eq!(TraceContext::parse(&reprinted), Some(context));
        }
    }

    /// Single-byte mutations of a valid header either still parse or are
    /// rejected outright — never a panic, and a mutation outside the hex
    /// alphabet is always rejected.
    #[test]
    fn mutated_headers_never_panic(raw in 1u64..u64::MAX, parent in 0u64..u64::MAX, at in 0usize..33, byte in any::<u8>()) {
        let id = TraceId::from_raw(raw).expect("nonzero raw id is valid");
        let mut header = TraceContext::child(id, parent)
            .header_value()
            .expect("enabled context has a header")
            .into_bytes();
        let at = at % header.len();
        header[at] = byte;
        let mutated = String::from_utf8_lossy(&header).into_owned();
        let parsed = TraceContext::parse(&mutated);
        let hex_or_dash = byte.is_ascii_hexdigit() || byte == b'-';
        if !hex_or_dash && !byte.is_ascii_whitespace() {
            prop_assert_eq!(parsed, None);
        }
    }
}

// ------------------------------------------------------------- SABRTRACE

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode/decode round-trips are byte-exact for arbitrary traces.
    #[test]
    fn sabrtrace_roundtrips_byte_exact(
        vocab in 1u32..400,
        offsets in vec(any::<u64>(), 0..12usize),
        seeds in vec(any::<u64>(), 0..12usize),
        lens in vec(0usize..30, 0..12usize),
        fill in any::<u64>(),
    ) {
        let n = offsets.len().min(seeds.len()).min(lens.len());
        let requests: Vec<TraceRequest> = (0..n)
            .map(|i| TraceRequest {
                offset_micros: offsets[i],
                seed: seeds[i],
                words: (0..lens[i])
                    .map(|j| (fill.wrapping_mul(i as u64 + 1).wrapping_add(j as u64) % u64::from(vocab)) as u32)
                    .collect(),
            })
            .collect();
        let trace = RequestTrace::new(vocab, requests).expect("words are in range");
        let bytes = trace.encode();
        let back = RequestTrace::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Every strict prefix of a valid trace file errors — never panics,
    /// never yields a shortened trace.
    #[test]
    fn sabrtrace_truncations_always_error(
        vocab in 1u32..100,
        lens in vec(0usize..10, 1..6usize),
        cut_seed in any::<u64>(),
    ) {
        let requests: Vec<TraceRequest> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| TraceRequest {
                offset_micros: i as u64,
                seed: i as u64,
                words: (0..len as u32).map(|w| w % vocab).collect(),
            })
            .collect();
        let bytes = RequestTrace::new(vocab, requests).expect("valid").encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(RequestTrace::decode(&bytes[..cut]).is_err());
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn sabrtrace_decoder_survives_byte_soup(bytes in vec(any::<u8>(), 0..200usize)) {
        let _ = RequestTrace::decode(&bytes);
        let mut framed = saber_loadgen::trace::MAGIC.to_vec();
        framed.extend_from_slice(&bytes);
        let _ = RequestTrace::decode(&framed);
    }
}

// ------------------------------------------------------------- SABRDELTA

use saberlda::core::model_io::{load_delta, save_delta, DeltaPayload};

/// A canonical delta over a `vocab × k` snapshot: `row_flags` picks the
/// changed rows (strictly increasing by construction), `fill` seeds the
/// probability bits — arbitrary `f32` bit patterns, NaNs included, since
/// the wire format carries raw bits.
fn sample_delta(vocab: u32, k: usize, row_flags: &[bool], fill: u64) -> DeltaPayload {
    let rows: Vec<(u32, Vec<f32>)> = row_flags
        .iter()
        .enumerate()
        .take(vocab as usize)
        .filter(|(_, &on)| on)
        .map(|(v, _)| {
            let probs = (0..k)
                .map(|j| {
                    f32::from_bits(
                        (fill.wrapping_mul(v as u64 + 1).wrapping_add(j as u64) & 0xFFFF_FFFF)
                            as u32,
                    )
                })
                .collect();
            (v as u32, probs)
        })
        .collect();
    DeltaPayload {
        base_version: fill % 1000,
        target_version: fill % 1000 + 1 + fill % 7,
        vocab_size: vocab as usize,
        n_topics: k,
        alpha: 0.05,
        sampler_code: 0,
        rows,
    }
}

/// Byte offset of the `base_version` field in the 57-byte header.
const DELTA_BASE_OFFSET: usize = 12;
/// Byte offset of the `target_version` field.
const DELTA_TARGET_OFFSET: usize = 20;
/// Byte offset of the first row id (header end).
const DELTA_FIRST_ROW_OFFSET: usize = 57;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode/decode round-trips are byte-exact for arbitrary deltas —
    /// including empty ones and NaN probability bits.
    #[test]
    fn sabrdelta_roundtrips_byte_exact(
        vocab in 1u32..300,
        k in 1usize..12,
        row_flags in vec(any::<bool>(), 0..40usize),
        fill in any::<u64>(),
    ) {
        let delta = sample_delta(vocab, k, &row_flags, fill);
        let mut bytes = Vec::new();
        save_delta(&delta, &mut bytes).expect("canonical delta encodes");
        prop_assert_eq!(Some(bytes.len() as u64), delta.encoded_bytes());
        let back = load_delta(bytes.as_slice()).expect("own encoding decodes");
        prop_assert_eq!(back.base_version, delta.base_version);
        prop_assert_eq!(back.target_version, delta.target_version);
        prop_assert_eq!(back.vocab_size, delta.vocab_size);
        prop_assert_eq!(back.n_topics, delta.n_topics);
        prop_assert_eq!(back.sampler_code, delta.sampler_code);
        prop_assert_eq!(back.rows.len(), delta.rows.len());
        // Bit-exactness without f32 comparison traps: re-encoding the
        // decoded payload reproduces the original bytes.
        let mut again = Vec::new();
        save_delta(&back, &mut again).expect("decoded delta re-encodes");
        prop_assert_eq!(again, bytes);
    }

    /// Every strict prefix of a valid delta errors — never panics, never
    /// yields a silently shortened patch.
    #[test]
    fn sabrdelta_truncations_always_error(
        vocab in 1u32..100,
        k in 1usize..8,
        row_flags in vec(any::<bool>(), 1..20usize),
        cut_seed in any::<u64>(),
    ) {
        let delta = sample_delta(vocab, k, &row_flags, 99);
        let mut bytes = Vec::new();
        save_delta(&delta, &mut bytes).expect("canonical delta encodes");
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(load_delta(&bytes[..cut]).is_err());
    }

    /// The decoder consumes exactly the encoded bytes: anything after the
    /// last row is rejected, so a framing bug upstream cannot half-parse.
    #[test]
    fn sabrdelta_trailing_bytes_are_rejected(
        vocab in 1u32..100,
        k in 1usize..8,
        row_flags in vec(any::<bool>(), 0..20usize),
        trailing in vec(any::<u8>(), 1..9usize),
    ) {
        let delta = sample_delta(vocab, k, &row_flags, 7);
        let mut bytes = Vec::new();
        save_delta(&delta, &mut bytes).expect("canonical delta encodes");
        bytes.extend_from_slice(&trailing);
        prop_assert!(load_delta(bytes.as_slice()).is_err());
    }

    /// Patching a row id out of range, or epochs so the target does not
    /// advance past the base, turns a valid delta into a rejected one.
    #[test]
    fn sabrdelta_bad_row_ids_and_epochs_are_rejected(
        vocab in 1u32..100,
        k in 1usize..8,
        fill in any::<u64>(),
    ) {
        let flags = vec![true]; // exactly row 0 changes
        let delta = sample_delta(vocab, k, &flags, fill);
        let mut bytes = Vec::new();
        save_delta(&delta, &mut bytes).expect("canonical delta encodes");

        // Row id ≥ V.
        let mut bad_row = bytes.clone();
        bad_row[DELTA_FIRST_ROW_OFFSET..DELTA_FIRST_ROW_OFFSET + 4]
            .copy_from_slice(&vocab.to_le_bytes());
        prop_assert!(load_delta(bad_row.as_slice()).is_err());

        // Target epoch equal to the base (not advancing).
        let mut bad_epoch = bytes.clone();
        let base = delta.base_version.to_le_bytes();
        bad_epoch[DELTA_TARGET_OFFSET..DELTA_TARGET_OFFSET + 8].copy_from_slice(&base);
        prop_assert!(load_delta(bad_epoch.as_slice()).is_err());

        // Target epoch behind the base.
        let mut behind = bytes;
        behind[DELTA_BASE_OFFSET..DELTA_BASE_OFFSET + 8]
            .copy_from_slice(&(delta.target_version + 1).to_le_bytes());
        prop_assert!(load_delta(behind.as_slice()).is_err());
    }

    /// Non-increasing row ids are rejected — duplicate a neighbour's id.
    #[test]
    fn sabrdelta_non_increasing_rows_are_rejected(
        vocab in 2u32..100,
        k in 1usize..8,
    ) {
        let flags = vec![true, true]; // rows 0 and 1 change
        let delta = sample_delta(vocab, k, &flags, 3);
        let mut bytes = Vec::new();
        save_delta(&delta, &mut bytes).expect("canonical delta encodes");
        let second_row = DELTA_FIRST_ROW_OFFSET + 4 + 4 * k;
        bytes[second_row..second_row + 4].copy_from_slice(&0u32.to_le_bytes());
        prop_assert!(load_delta(bytes.as_slice()).is_err());
    }

    /// Arbitrary byte soup never panics the decoder, framed or not.
    #[test]
    fn sabrdelta_decoder_survives_byte_soup(bytes in vec(any::<u8>(), 0..200usize)) {
        let _ = load_delta(bytes.as_slice());
        let mut framed = b"SABRDELT".to_vec();
        framed.extend_from_slice(&bytes);
        let _ = load_delta(framed.as_slice());
    }
}

// ----------------------------------------------------- live HTTP ingress

fn tiny_model() -> LdaModel {
    let mut model = LdaModel::new(30, 4, 0.08, 0.01).unwrap();
    for v in 0..30 {
        model.word_topic_mut()[(v, v % 4)] = 10;
    }
    model.refresh_probabilities();
    model
}

fn post_infer_with_header(addr: std::net::SocketAddr, header: Option<&str>) -> String {
    let body = r#"{"words":[1,2,3,4],"seed":7}"#;
    let trace_header = header
        .map(|value| format!("X-Saber-Trace: {value}\r\n"))
        .unwrap_or_default();
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: fuzz\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{trace_header}Connection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    String::from_utf8_lossy(&reply).into_owned()
}

/// A live server treats every garbage `X-Saber-Trace` value as "no trace":
/// the request is served normally (HTTP 200, same θ bytes as the
/// headerless request) instead of being rejected.
#[test]
fn garbage_trace_headers_never_fail_requests() {
    let server = Arc::new(TopicServer::from_model(&tiny_model(), ServeConfig::default()).unwrap());
    let http = HttpServer::bind("127.0.0.1:0", server, None, HttpConfig::default()).unwrap();
    let addr = http.local_addr();

    let reference = post_infer_with_header(addr, None);
    assert!(reference.starts_with("HTTP/1.1 200"), "{reference}");
    let reference_body = reference.split("\r\n\r\n").nth(1).unwrap().to_string();

    for garbage in [
        "",
        "zzzz",
        "deadbeef",                               // 8 hex digits, not 16
        "0000000000000000",                       // zero id is not a valid trace
        "0123456789abcdef-XYZ",                   // bad parent
        "0123456789abcdef-0123456789abcdef-junk", // extra component
        "ffffffffffffffffffffffffffffffff",       // 32 digits, no separator
        "!@#$%^&*()_+|~`",
        "0123456789abcdeg", // one non-hex char
    ] {
        let reply = post_infer_with_header(addr, Some(garbage));
        assert!(
            reply.starts_with("HTTP/1.1 200"),
            "garbage header {garbage:?} changed the status: {}",
            reply.lines().next().unwrap_or("<empty>")
        );
        let body = reply.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(
            body, reference_body,
            "garbage header {garbage:?} changed the answer"
        );
    }

    // A valid header still works and gets the same θ (the trace id only
    // adds observability, never changes sampling).
    let traced = post_infer_with_header(addr, Some("0123456789abcdef-0000000000000001"));
    assert!(traced.starts_with("HTTP/1.1 200"));
    assert_eq!(traced.split("\r\n\r\n").nth(1).unwrap(), reference_body);

    http.shutdown();
}
