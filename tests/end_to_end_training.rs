//! Cross-crate integration tests: end-to-end training through the public API.

use saberlda::corpus::presets::DatasetPreset;
use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::{HeldOutEvaluator, LdaTrainer, OptLevel, SaberLda, SaberLdaConfig};

fn small_corpus(seed: u64) -> saberlda::Corpus {
    SyntheticSpec {
        n_docs: 150,
        vocab_size: 400,
        mean_doc_len: 50.0,
        n_topics: 8,
        ..SyntheticSpec::default()
    }
    .generate(seed)
}

#[test]
fn every_optimisation_level_trains_to_the_same_token_counts() {
    let corpus = small_corpus(1);
    for level in OptLevel::ALL {
        let config = SaberLdaConfig::builder()
            .n_topics(16)
            .n_iterations(3)
            .n_chunks(2)
            .seed(9)
            .opt_level(level)
            .build()
            .unwrap();
        let mut lda = SaberLda::new(config, &corpus).unwrap();
        let report = lda.train();
        assert_eq!(report.iterations.len(), 3, "{level}");
        assert_eq!(
            lda.model().word_topic().total(),
            corpus.n_tokens(),
            "level {level} lost tokens"
        );
        assert!(report.total_seconds() > 0.0);
    }
}

#[test]
fn held_out_likelihood_improves_and_beats_the_uniform_bound() {
    let corpus = small_corpus(2);
    let evaluator = HeldOutEvaluator::new(&corpus, 7).unwrap();
    let config = SaberLdaConfig::builder()
        .n_topics(8)
        .alpha(0.15)
        .n_iterations(15)
        .n_chunks(2)
        .seed(3)
        .build()
        .unwrap();
    let mut lda = SaberLda::new(config, &corpus).unwrap();
    let report = lda.train_with_eval(&evaluator, 2);
    let curve = report.convergence_curve();
    assert!(curve.len() >= 5);
    let first = curve.first().unwrap().1;
    let last = curve.last().unwrap().1;
    assert!(
        last > first,
        "likelihood did not improve: {first} -> {last}"
    );
    // Better than assigning every word uniform probability.
    let uniform = (1.0 / corpus.vocab_size() as f64).ln();
    assert!(
        last > uniform,
        "final LL {last} below uniform bound {uniform}"
    );
}

#[test]
fn training_is_reproducible_across_chunk_counts_in_token_totals() {
    // Different chunkings must still conserve tokens and produce valid models.
    let corpus = small_corpus(3);
    for chunks in [1usize, 2, 5] {
        let config = SaberLdaConfig::builder()
            .n_topics(12)
            .n_iterations(2)
            .n_chunks(chunks)
            .seed(5)
            .build()
            .unwrap();
        let mut lda = SaberLda::new(config, &corpus).unwrap();
        lda.train();
        assert_eq!(lda.model().word_topic().total(), corpus.n_tokens());
        assert!(lda.n_chunks() <= chunks.max(1));
        // B̂ columns remain normalised through chunked training.
        let bhat = lda.model().word_topic_prob();
        for k in 0..12 {
            let s: f32 = (0..corpus.vocab_size()).map(|v| bhat[(v, k)]).sum();
            assert!(
                (s - 1.0).abs() < 1e-3,
                "chunks={chunks} column {k} sums to {s}"
            );
        }
    }
}

#[test]
fn saberlda_recovers_planted_topics_better_than_random_init() {
    // Generate a corpus with strong planted structure and check the trained
    // model assigns co-occurring words to the same topic more than chance.
    let spec = SyntheticSpec {
        n_docs: 200,
        vocab_size: 300,
        mean_doc_len: 60.0,
        n_topics: 5,
        doc_topic_alpha: 0.03,
        topic_word_beta: 0.01,
        ..SyntheticSpec::default()
    };
    let (corpus, planted) = spec.generate_with_model(8);
    let config = SaberLdaConfig::builder()
        .n_topics(5)
        .alpha(0.1)
        .n_iterations(25)
        .seed(2)
        .build()
        .unwrap();
    let mut lda = SaberLda::new(config, &corpus).unwrap();
    lda.train();

    // For each planted topic, find its top words and check the trained model
    // concentrates them in one trained topic (purity above chance = 1/K).
    let mut purities = Vec::new();
    for phi in &planted.topic_word {
        let mut idx: Vec<usize> = (0..phi.len()).collect();
        idx.sort_by(|&a, &b| phi[b].partial_cmp(&phi[a]).unwrap());
        let top_words = &idx[..20];
        let mut votes = [0usize; 5];
        for &w in top_words {
            let row = lda.model().word_topic_prob().row(w);
            let best = (0..5)
                .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
                .unwrap();
            votes[best] += 1;
        }
        purities.push(*votes.iter().max().unwrap() as f64 / top_words.len() as f64);
    }
    let mean_purity: f64 = purities.iter().sum::<f64>() / purities.len() as f64;
    assert!(
        mean_purity > 0.45,
        "planted-topic purity {mean_purity:.2} barely above chance (0.2)"
    );
}

#[test]
fn preset_corpora_train_through_the_trait_object_interface() {
    let corpus = DatasetPreset::PubMed.synthetic_spec(100_000).generate(4);
    let config = SaberLdaConfig::builder()
        .n_topics(32)
        .n_iterations(2)
        .n_chunks(2)
        .seed(0)
        .build()
        .unwrap();
    let mut lda = SaberLda::new(config, &corpus).unwrap();
    let trainer: &mut dyn LdaTrainer = &mut lda;
    let out = trainer.step();
    assert_eq!(out.tokens, corpus.n_tokens());
    assert!(out.seconds > 0.0);
    assert!(trainer.name().contains("SaberLDA"));
}
