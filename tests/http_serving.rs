//! End-to-end HTTP serving: real TCP round-trips against the hand-rolled
//! listener — concurrent clients, seed-header replay, overload that answers
//! `429` instead of hanging, deadline `503`s, a snapshot swap observed over
//! a live keep-alive connection, and `/stats` percentiles after traffic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use saberlda::core::json;
use saberlda::serve::http::{HttpConfig, HttpServer};
use saberlda::serve::{FoldInParams, ServeConfig, SnapshotSampler, TopicServer};
use saberlda::{InferenceSnapshot, LdaModel, Vocabulary};

const K: usize = 4;
const VOCAB: usize = 40;

/// A model whose topics own disjoint word sets: word `v` belongs to topic
/// `(v + shift) % K`.
fn planted_model(shift: usize) -> LdaModel {
    let mut model = LdaModel::new(VOCAB, K, 0.05, 0.01).unwrap();
    for v in 0..VOCAB {
        model.word_topic_mut()[(v, (v + shift) % K)] = 50;
    }
    model.refresh_probabilities();
    model
}

/// Word ids drawn purely from the set topic `k` owns at shift 0.
fn planted_doc(k: usize, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| (k + K * (i % (VOCAB / K))) as u32)
        .collect()
}

fn start(
    serve: ServeConfig,
    http: HttpConfig,
    vocab: Option<Vocabulary>,
) -> (Arc<TopicServer>, HttpServer) {
    let server = Arc::new(TopicServer::from_model(&planted_model(0), serve).unwrap());
    let front = HttpServer::bind("127.0.0.1:0", Arc::clone(&server), vocab, http).unwrap();
    (server, front)
}

/// One request over a throwaway connection. Returns `(status, body)`.
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    split_response(&response)
}

fn split_response(response: &str) -> (u16, String) {
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_string();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post_infer(addr: SocketAddr, payload: &str, headers: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST /infer HTTP/1.1\r\nHost: t\r\n{headers}Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        ),
    )
}

fn words_payload(words: &[u32], seed: u64) -> String {
    format!(
        "{{\"words\":[{}],\"seed\":{seed}}}",
        words
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    )
}

#[test]
fn healthz_and_infer_round_trip_over_real_tcp() {
    let (server, front) = start(ServeConfig::default(), HttpConfig::default(), None);
    let addr = front.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("snapshot_version").unwrap().as_u64(), Some(1));
    assert_eq!(health.get("n_topics").unwrap().as_u64(), Some(K as u64));

    let (status, body) = post_infer(addr, &words_payload(&planted_doc(2, 12), 7), "");
    assert_eq!(status, 200, "{body}");
    let reply = json::parse(&body).unwrap();
    assert_eq!(reply.get("dominant_topic").unwrap().as_u64(), Some(2));
    assert_eq!(reply.get("snapshot_version").unwrap().as_u64(), Some(1));
    assert_eq!(reply.get("seed").unwrap().as_u64(), Some(7));
    let theta: Vec<f64> = reply
        .get("theta")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect();
    assert_eq!(theta.len(), K);
    assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-3);

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn seed_header_replays_bit_identically() {
    let (server, front) = start(ServeConfig::default(), HttpConfig::default(), None);
    let addr = front.local_addr();
    // A soft model would be more discriminating, but even on the planted
    // one the bytes must match exactly; the header must also beat the body
    // seed.
    let payload = words_payload(&planted_doc(1, 10), 999);
    let header = "X-Saber-Seed: 1234\r\n";
    let (s1, first) = post_infer(addr, &payload, header);
    let (s2, second) = post_infer(addr, &payload, header);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(first, second, "same seed header must give identical bytes");
    let reply = json::parse(&first).unwrap();
    assert_eq!(
        reply.get("seed").unwrap().as_u64(),
        Some(1234),
        "header seed must override the body seed"
    );
    // A different seed is a different request (echoed seed differs even if
    // θ coincides on a peaked model).
    let (_, other) = post_infer(addr, &payload, "X-Saber-Seed: 77\r\n");
    assert_ne!(first, other);

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn concurrent_http_clients_recover_planted_topics() {
    let (server, front) = start(
        ServeConfig {
            n_workers: 4,
            max_batch: 8,
            ..ServeConfig::default()
        },
        HttpConfig::default(),
        None,
    );
    let addr = front.local_addr();
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                for i in 0..20 {
                    let topic = (c + i) % K;
                    let (status, body) = post_infer(
                        addr,
                        &words_payload(&planted_doc(topic, 12), (c * 100 + i) as u64),
                        "",
                    );
                    assert_eq!(status, 200, "client {c} request {i}: {body}");
                    let reply = json::parse(&body).unwrap();
                    assert_eq!(
                        reply.get("dominant_topic").unwrap().as_u64(),
                        Some(topic as u64),
                        "client {c} request {i}: {body}"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
    assert_eq!(server.stats().requests, 80);

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn overload_answers_429_instead_of_hanging() {
    // One worker, a depth-1 queue and slow fold-in: concurrent clients must
    // overflow admission. The contract: every client gets *an answer* (200
    // from the queue, 429 when it is full, 503 when the deadline passes) —
    // never an unbounded wait.
    let (server, front) = start(
        ServeConfig {
            n_workers: 1,
            max_batch: 1,
            queue_depth: 1,
            fold_in: FoldInParams {
                burn_in: 30,
                samples: 30,
                ..FoldInParams::default()
            },
            ..ServeConfig::default()
        },
        HttpConfig {
            request_deadline: Duration::from_secs(10),
            ..HttpConfig::default()
        },
        None,
    );
    let addr = front.local_addr();
    let heavy: Vec<u32> = planted_doc(0, 4000);
    let clients: Vec<_> = (0..12)
        .map(|c| {
            let payload = words_payload(&heavy, c as u64);
            std::thread::spawn(move || post_infer(addr, &payload, "").0)
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| [200, 429, 503].contains(s)),
        "unexpected statuses: {statuses:?}"
    );
    assert!(
        statuses.contains(&429),
        "12 concurrent heavy requests against a depth-1 queue must shed load: {statuses:?}"
    );
    assert!(
        statuses.contains(&200),
        "the pool must still serve some requests under overload: {statuses:?}"
    );

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn missed_deadline_answers_503() {
    // A deadline far below the service time of a heavy request: admission
    // succeeds (empty queue) but the reply cannot arrive in time.
    let (server, front) = start(
        ServeConfig {
            n_workers: 1,
            max_batch: 1,
            fold_in: FoldInParams {
                burn_in: 40,
                samples: 40,
                ..FoldInParams::default()
            },
            ..ServeConfig::default()
        },
        HttpConfig {
            request_deadline: Duration::from_millis(1),
            ..HttpConfig::default()
        },
        None,
    );
    let addr = front.local_addr();
    let (status, body) = post_infer(addr, &words_payload(&planted_doc(0, 8000), 1), "");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("deadline"), "{body}");

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn snapshot_swap_is_visible_over_a_live_keep_alive_connection() {
    let (server, front) = start(ServeConfig::default(), HttpConfig::default(), None);
    let addr = front.local_addr();

    // One persistent connection for the whole test: the swap must be
    // observable between two requests on the *same* socket.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |payload: &str| -> (u16, String) {
        let raw = format!(
            "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        );
        stream.write_all(raw.as_bytes()).unwrap();
        // Read the status line and headers, then exactly content-length
        // bytes of body, leaving the connection open for the next request.
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    };

    let doc = planted_doc(0, 12);
    let (status, body) = send(&words_payload(&doc, 9));
    assert_eq!(status, 200);
    let before = json::parse(&body).unwrap();
    assert_eq!(before.get("snapshot_version").unwrap().as_u64(), Some(1));
    assert_eq!(before.get("dominant_topic").unwrap().as_u64(), Some(0));

    // Publish a shifted model (word v moves to topic (v+1) % K) while the
    // connection stays open.
    let version = server.publish(InferenceSnapshot::from_model(
        &planted_model(1),
        SnapshotSampler::WaryTree,
    ));
    assert_eq!(version, 2);

    let (status, body) = send(&words_payload(&doc, 9));
    assert_eq!(status, 200);
    let after = json::parse(&body).unwrap();
    assert_eq!(after.get("snapshot_version").unwrap().as_u64(), Some(2));
    assert_eq!(
        after.get("dominant_topic").unwrap().as_u64(),
        Some(1),
        "the same document must follow the swapped model: {body}"
    );

    drop(reader);
    drop(stream);
    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn raw_tokens_and_query_endpoints_round_trip() {
    let vocab = Vocabulary::synthetic(VOCAB);
    let (server, front) = start(ServeConfig::default(), HttpConfig::default(), Some(vocab));
    let addr = front.local_addr();

    // Raw tokens: w00000 and w00004 belong to topic 0; one OOV is skipped.
    let payload = r#"{"tokens":["w00000","w00004","notaword"],"oov":"skip","seed":3}"#;
    let (status, body) = post_infer(addr, payload, "");
    assert_eq!(status, 200, "{body}");
    let reply = json::parse(&body).unwrap();
    assert_eq!(reply.get("n_oov").unwrap().as_u64(), Some(1));
    assert_eq!(reply.get("dominant_topic").unwrap().as_u64(), Some(0));
    // Under "fail" the same document is a client error.
    let payload = r#"{"tokens":["notaword"],"oov":"fail"}"#;
    let (status, _) = post_infer(addr, payload, "");
    assert_eq!(status, 400);

    // Top words resolve to vocabulary tokens and follow planted structure.
    let (status, body) = get(addr, "/top-words?topic=1&n=4");
    assert_eq!(status, 200);
    let top = json::parse(&body).unwrap();
    let words = top.get("words").unwrap().as_array().unwrap();
    assert_eq!(words.len(), 4);
    for w in words {
        let id = w.get("word").unwrap().as_u64().unwrap();
        assert_eq!(id % K as u64, 1, "{body}");
        assert!(w.get("token").unwrap().as_str().unwrap().starts_with('w'));
    }

    // Similarity: a document against itself is distance 0; against a
    // disjoint-topic document it is far.
    let (status, body) = get(addr, "/similar?a=0,4,8&b=0,4,8&seed=5");
    assert_eq!(status, 200);
    let same = json::parse(&body).unwrap();
    assert!(
        same.get("hellinger").unwrap().as_f64().unwrap() < 1e-6,
        "{body}"
    );
    let (_, body) = get(addr, "/similar?a=0,4,8&b=1,5,9&seed=5");
    let far = json::parse(&body).unwrap();
    assert!(
        far.get("hellinger").unwrap().as_f64().unwrap() > 0.5,
        "{body}"
    );

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn protocol_errors_get_4xx_not_a_dead_socket() {
    let (server, front) = start(ServeConfig::default(), HttpConfig::default(), None);
    let addr = front.local_addr();

    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/infer").0, 405, "GET on a POST endpoint");
    let (status, _) = request(
        addr,
        "DELETE /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert_eq!(post_infer(addr, "{not json", "").0, 400);
    assert_eq!(
        post_infer(addr, r#"{"words":[99999]}"#, "").0,
        400,
        "OOV id"
    );
    assert_eq!(
        post_infer(addr, r#"{"tokens":["x"]}"#, "").0,
        400,
        "raw tokens need a vocabulary"
    );
    assert_eq!(get(addr, "/top-words?topic=99").0, 400);
    assert_eq!(get(addr, "/similar?a=1&b=zzz").0, 400);
    assert_eq!(get(addr, "/similar?b=1").0, 400, "missing 'a' parameter");
    assert_eq!(get(addr, "/similar?a=1").0, 400, "missing 'b' parameter");
    let (status, _) = request(
        addr,
        "POST /infer HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411, "POST without content-length");
    let (status, _) = request(addr, "GARBAGE\r\n\r\n");
    assert_eq!(status, 400);

    // The server survives all of the above and still serves.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn trickled_request_is_cut_off_by_the_read_budget() {
    // A slowloris client stays inside the per-read timeout but must not be
    // able to hold the request open past the whole-request budget.
    let (server, front) = start(
        ServeConfig::default(),
        HttpConfig {
            read_timeout: Duration::from_millis(200),
            ..HttpConfig::default()
        },
        None,
    );
    let addr = front.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Poll for the server's reaction between trickled bytes; writing after
    // the server closes can elicit a reset that discards a buffered
    // response, so detection must happen inside the loop.
    stream
        .set_read_timeout(Some(Duration::from_millis(1)))
        .unwrap();
    let started = std::time::Instant::now();
    let mut cut_off = false;
    let mut response = Vec::new();
    let mut buf = [0u8; 256];
    // One byte every 50 ms (never completing the request line): each read
    // on the server side succeeds well within the 200 ms per-read timeout,
    // so only the whole-request budget can stop this.
    for _ in 0..60 {
        if stream.write_all(b"X").is_err() {
            cut_off = true;
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                cut_off = true;
                break;
            }
            Ok(n) => {
                response.extend_from_slice(&buf[..n]);
                cut_off = true;
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                cut_off = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        cut_off,
        "server let a trickling request run for {:?} without cutting it off",
        started.elapsed()
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "cut-off took {:?}",
        started.elapsed()
    );
    if !response.is_empty() {
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 408"),
            "expected 408 for a trickled request, got {text:?}"
        );
    }

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn expect_100_continue_gets_the_interim_response() {
    let (server, front) = start(ServeConfig::default(), HttpConfig::default(), None);
    let addr = front.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Send headers only, as a strict client would, and wait for the 100.
    let payload = words_payload(&planted_doc(0, 8), 5);
    let head = format!(
        "POST /infer HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    let mut interim = String::new();
    reader.read_line(&mut interim).unwrap();
    assert!(
        interim.starts_with("HTTP/1.1 100"),
        "expected an interim 100 Continue, got {interim:?}"
    );
    let mut blank = String::new();
    reader.read_line(&mut blank).unwrap();

    // Only now send the body; the final response must be a normal 200.
    stream.write_all(payload.as_bytes()).unwrap();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    let (status, body) = split_response(&rest);
    assert_eq!(status, 200, "{rest}");
    let reply = json::parse(&body).unwrap();
    assert_eq!(reply.get("dominant_topic").unwrap().as_u64(), Some(0));

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}

#[test]
fn stats_report_latency_percentiles_after_traffic() {
    let (server, front) = start(ServeConfig::default(), HttpConfig::default(), None);
    let addr = front.local_addr();

    for seed in 0..40u64 {
        let (status, _) = post_infer(addr, &words_payload(&planted_doc(0, 12), seed), "");
        assert_eq!(status, 200);
    }
    get(addr, "/healthz");

    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    let stats = json::parse(&body).unwrap();
    let server_stats = stats.get("server").unwrap();
    assert_eq!(server_stats.get("requests").unwrap().as_u64(), Some(40));
    let server_latency = server_stats.get("latency").unwrap();
    assert_eq!(server_latency.get("count").unwrap().as_u64(), Some(40));
    // The queue-wait/handler decomposition covers every request too.
    for split in ["queue_wait", "handler"] {
        let h = server_stats.get(split).unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(40), "{split}");
    }

    let infer = stats
        .get("http")
        .unwrap()
        .get("endpoints")
        .unwrap()
        .get("infer")
        .unwrap();
    let infer_total = infer.get("total").unwrap();
    assert_eq!(infer_total.get("count").unwrap().as_u64(), Some(40));
    for split in ["queue_wait", "handler"] {
        let h = infer.get(split).unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(40), "{split}");
    }
    let p50 = infer_total.get("p50_us").unwrap().as_f64().unwrap();
    let p95 = infer_total.get("p95_us").unwrap().as_f64().unwrap();
    let p99 = infer_total.get("p99_us").unwrap().as_f64().unwrap();
    assert!(p50 > 0.0);
    assert!(p50 <= p95 && p95 <= p99, "p50 {p50} p95 {p95} p99 {p99}");

    // The front-end's own view agrees with what went over the wire.
    let http_stats = front.stats();
    assert_eq!(http_stats.infer.total.count(), 40);
    assert!(http_stats.healthz.total.count() >= 1);
    assert!(http_stats.requests >= 42);

    front.shutdown();
    Arc::try_unwrap(server).unwrap().shutdown();
}
