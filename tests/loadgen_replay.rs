//! Deterministic-replay differential suite for the loadgen harness
//! (ISSUE 8): replay must be a *measurement* tool, not a noise source, so
//! the θ a replay produces is pinned bit-for-bit across runs and
//! topologies.
//!
//! Contracts:
//!
//! * the same synthetic trace replayed twice against direct serving is
//!   bit-identical in θ — per-request seeds, not wall-clock, drive
//!   sampling;
//! * direct serving vs a one-shard router replay bit-identically under
//!   concurrent load ([`derive_shard_seed`] keeps shard 0's seed equal to
//!   the raw request seed);
//! * a trace recorded at the HTTP ingress replays the same θ as the
//!   requests that produced it.

use std::time::Duration;

use saber_loadgen::replay::{
    record_over_http, replay, replay_model, RateProfile, ReplayConfig, Topology, TopologyHandle,
};
use saber_loadgen::synth::synthesize_trace;
use saber_loadgen::trace::RequestTrace;
use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::serve::ServeConfig;

const K: usize = 8;
const MODEL_SEED: u64 = 7;

fn test_trace(n: usize, seed: u64) -> RequestTrace {
    synthesize_trace(&SyntheticSpec::small_test(), n, seed)
}

/// Flat-out replay config collecting θ, with enough threads to create
/// genuine interleaving.
fn differential_config() -> ReplayConfig {
    ReplayConfig {
        threads: 4,
        deadline: Duration::from_secs(10),
        collect_thetas: true,
    }
}

fn replay_thetas(topology: Topology, trace: &RequestTrace) -> Vec<Option<Vec<u32>>> {
    let model = replay_model(trace.vocab_size() as usize, K, MODEL_SEED).unwrap();
    let handle = TopologyHandle::build(topology, &model, &ServeConfig::default()).unwrap();
    let outcome = replay(
        &handle.backend(),
        trace,
        &RateProfile::Fixed { qps: 50_000.0 },
        &differential_config(),
    );
    handle.shutdown();
    assert_eq!(
        outcome.ok, outcome.requests,
        "replay on {topology:?} dropped requests: {outcome:?}"
    );
    outcome.thetas.expect("collect_thetas was set")
}

#[test]
fn same_trace_twice_direct_is_bit_identical() {
    let trace = test_trace(120, 0xDECAF);
    let first = replay_thetas(Topology::Direct, &trace);
    let second = replay_thetas(Topology::Direct, &trace);
    assert_eq!(first.len(), second.len());
    for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
        assert_eq!(a, b, "request {i} differed between identical replays");
        assert!(a.is_some(), "request {i} has no θ");
    }
}

#[test]
fn direct_vs_one_shard_router_is_bit_identical_under_load() {
    let trace = test_trace(120, 0xBEEF);
    let direct = replay_thetas(Topology::Direct, &trace);
    let routed = replay_thetas(Topology::LocalShards(1), &trace);
    for (i, (a, b)) in direct.iter().zip(routed.iter()).enumerate() {
        assert_eq!(
            a, b,
            "request {i} differed between direct and 1-shard router"
        );
    }
}

#[test]
fn synthetic_trace_bytes_are_reproducible() {
    let a = test_trace(60, 123).encode();
    let b = test_trace(60, 123).encode();
    assert_eq!(a, b, "synthesis is not deterministic");
    // And survive a file round-trip untouched.
    let path =
        std::env::temp_dir().join(format!("saber_loadgen_rt_{}.sabrtrace", std::process::id()));
    let trace = test_trace(60, 123);
    trace.save(&path).unwrap();
    let loaded = RequestTrace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, trace);
    assert_eq!(loaded.encode(), a);
}

#[test]
fn recorded_trace_replays_what_was_sent() {
    let trace = test_trace(40, 0xFACE);
    let model = replay_model(trace.vocab_size() as usize, K, MODEL_SEED).unwrap();
    let recorded = record_over_http(&trace, &model, &ServeConfig::default(), 40).unwrap();

    // The capture preserves request content and order exactly; offsets are
    // the server's own arrival clock, so they must be non-decreasing.
    assert_eq!(recorded.len(), 40);
    assert_eq!(recorded.vocab_size(), trace.vocab_size());
    for (i, (sent, captured)) in trace
        .requests()
        .iter()
        .zip(recorded.requests().iter())
        .enumerate()
    {
        assert_eq!(
            captured.words, sent.words,
            "request {i} words changed in capture"
        );
        assert_eq!(
            captured.seed, sent.seed,
            "request {i} seed changed in capture"
        );
    }
    assert!(
        recorded
            .requests()
            .windows(2)
            .all(|w| w[0].offset_micros <= w[1].offset_micros),
        "recorded offsets are not monotone"
    );

    // Replaying the capture answers bit-identically to replaying the
    // original prefix: the recorder lost nothing that matters to θ.
    let original = replay_thetas(Topology::Direct, &trace);
    let from_capture = replay_thetas(Topology::Direct, &recorded);
    for (i, (a, b)) in original.iter().zip(from_capture.iter()).enumerate() {
        assert_eq!(
            a, b,
            "request {i} differed between original and recorded replay"
        );
    }
}
