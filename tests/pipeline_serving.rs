//! Serve-while-training differential suite (ISSUE 10).
//!
//! The pipeline's claim is strong: a fleet refreshed continuously through
//! `SABRDELTA` publications — only the `B̂` rows the trainer touched cross
//! the wire — must be *indistinguishable* from one refreshed with full
//! snapshots, and from one cold-booted at each epoch's model. These tests
//! pin that:
//!
//! * at every pinned epoch, the delta-published fleet, the full-snapshot
//!   fleet and a cold-booted baseline answer bit-identically under ESCA
//!   (and within 1e-5 L∞ of the direct server under EM);
//! * a loadgen replay against a fleet refreshed **mid-stream** drops zero
//!   requests and every θ matches exactly the before- or after-refresh
//!   reference — no answer ever mixes epochs;
//! * the same holds over real localhost TCP, where `POST /publish-delta`
//!   carries the rows and a stale base falls back to full slices;
//! * the trainer's incremental sampler rebuild touches only the rows it
//!   reports (counter asserted) — the `O(changed·K)` publish cost claim.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use saber_loadgen::replay::{replay, replay_with_chaos, ChaosTrigger, RateProfile, ReplayConfig};
use saber_loadgen::synth::synthesize_trace;
use saber_loadgen::trace::RequestTrace;
use saber_pipeline::{DocumentFeed, PipelineConfig, PipelineError, TrainingPipeline};
use saberlda::core::model_io::DeltaPayload;
use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::serve::{
    FoldInKind, FoldInParams, HttpConfig, HttpServer, HttpTransport, InferenceBackend,
    InferenceSnapshot, LocalTransport, PartialRequest, ServeConfig, ServeError, ShardInfo,
    ShardPlan, ShardRouter, ShardTransport, TopicServer,
};
use saberlda::trace::TraceContext;
use saberlda::{LdaModel, SaberLda, SaberLdaConfig};

const K: usize = 8;
const N_SHARDS: usize = 2;

fn spec() -> SyntheticSpec {
    SyntheticSpec::small_test() // V = 200
}

fn serve_config(kind: FoldInKind) -> ServeConfig {
    ServeConfig {
        n_workers: 2,
        fold_in: FoldInParams {
            kind,
            ..FoldInParams::default()
        },
        ..ServeConfig::default()
    }
}

/// A trainer warmed up with a short batch run — the state the fleet boots
/// from before the stream starts.
fn warm_trainer(seed: u64) -> SaberLda {
    let corpus = spec().generate(seed);
    let config = SaberLdaConfig::builder()
        .n_topics(K)
        .n_iterations(3)
        .n_chunks(2)
        .seed(seed)
        .build()
        .unwrap();
    let mut trainer = SaberLda::new(config, &corpus).unwrap();
    trainer.train();
    trainer
}

/// One stream batch: `n_docs` synthetic documents over the same vocabulary.
fn stream_batch(n_docs: usize, seed: u64) -> Vec<Vec<u32>> {
    SyntheticSpec { n_docs, ..spec() }
        .generate(seed)
        .documents()
        .iter()
        .map(|d| d.words().to_vec())
        .collect()
}

fn bits(theta: &[f32]) -> Vec<u32> {
    theta.iter().map(|x| x.to_bits()).collect()
}

fn linf(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn local_fleet(model: &LdaModel, kind: FoldInKind) -> ShardRouter {
    ShardRouter::from_model(
        model,
        ShardPlan::uniform(model.vocab_size(), N_SHARDS).unwrap(),
        serve_config(kind),
    )
    .unwrap()
}

/// Replays `trace` and returns every request's θ bit pattern.
fn replay_thetas(router: &Arc<ShardRouter>, trace: &RequestTrace) -> Vec<Option<Vec<u32>>> {
    let backend: Arc<dyn InferenceBackend> = Arc::clone(router) as _;
    let outcome = replay(
        &backend,
        trace,
        &RateProfile::Fixed { qps: 5_000.0 },
        &ReplayConfig {
            threads: 4,
            deadline: Duration::from_secs(10),
            collect_thetas: true,
        },
    );
    assert_eq!(
        outcome.ok, outcome.requests,
        "reference replay dropped requests"
    );
    outcome.thetas.unwrap()
}

#[test]
fn every_pinned_epoch_answers_identically_across_delta_full_and_cold_boot() {
    for kind in [FoldInKind::Esca, FoldInKind::Em] {
        let mut trainer = warm_trainer(11);
        let sampler = serve_config(kind).sampler;
        let delta_fleet = Arc::new(local_fleet(trainer.model(), kind));
        let full_fleet = Arc::new(local_fleet(trainer.model(), kind));
        // The warmup's M-steps touched every row; both fleets already
        // serve that state, so drain the set before the stream starts.
        let initial = trainer.take_touched_rows();
        assert_eq!(initial.len(), trainer.model().vocab_size());

        let rows_rebuilt_before = trainer.rows_rebuilt();
        let full_rebuilds_before = trainer.full_rebuilds();
        let trace = synthesize_trace(&spec(), 40, 97);
        let mut base = delta_fleet.epoch();
        let mut touched_total = 0u64;
        for step in 0..3u64 {
            trainer.ingest(stream_batch(6, 300 + step)).unwrap();
            trainer.iterate_incremental();
            trainer.iterate_incremental();
            let touched = trainer.take_touched_rows();
            assert!(
                !touched.is_empty() && touched.len() < trainer.model().vocab_size(),
                "step {step}: incremental training must touch a strict subset of rows"
            );
            touched_total += touched.len() as u64;
            let snapshot = InferenceSnapshot::from_model(trainer.model(), sampler);
            let d = delta_fleet
                .publish_incremental(snapshot.clone(), &touched, base)
                .unwrap();
            let f = full_fleet.publish(snapshot).unwrap();
            assert_eq!(d, f, "fleets must advance in lockstep");
            base = d;

            // Pinned-epoch differential: delta fleet ≡ full fleet ≡ a
            // fleet cold-booted from this epoch's model.
            let cold = Arc::new(local_fleet(trainer.model(), kind));
            let from_delta = replay_thetas(&delta_fleet, &trace);
            let from_full = replay_thetas(&full_fleet, &trace);
            let from_cold = replay_thetas(&cold, &trace);
            assert_eq!(
                from_delta, from_full,
                "{kind:?} epoch {d}: delta-published fleet diverged from full-snapshot fleet"
            );
            assert_eq!(
                from_delta, from_cold,
                "{kind:?} epoch {d}: delta-published fleet diverged from a cold boot"
            );
            if kind == FoldInKind::Em {
                // EM through shards vs the direct (unsharded) server: the
                // merge is floating-point, so within 1e-5 L∞.
                let direct = TopicServer::from_model(trainer.model(), serve_config(kind)).unwrap();
                for request in trace.requests().iter().take(10) {
                    let a = delta_fleet
                        .infer_topics(request.words.clone(), request.seed)
                        .unwrap();
                    let b = direct
                        .infer_topics(request.words.clone(), request.seed)
                        .unwrap();
                    assert!(
                        linf(&a.theta, &b.theta) <= 1e-5,
                        "EM sharded vs direct exceeded 1e-5 L∞"
                    );
                }
                direct.shutdown();
            }
            Arc::try_unwrap(cold).unwrap().shutdown();
        }

        // The publish-cost claim: the incremental path rebuilt only the
        // rows it reported — no full O(V·K) rebuild ran during the
        // stream, and the per-row counter stayed well under one.
        assert_eq!(
            trainer.full_rebuilds(),
            full_rebuilds_before,
            "{kind:?}: the stream must never trigger a full rebuild"
        );
        let rebuilt = trainer.rows_rebuilt() - rows_rebuilt_before;
        assert!(rebuilt >= touched_total, "every exported row was rebuilt");
        // 9 refresh passes (3 steps × ingest + 2 incremental iterations)
        // of a full rebuild would be 9·V rows.
        assert!(
            rebuilt < 9 * trainer.model().vocab_size() as u64,
            "{kind:?}: rebuilt {rebuilt} rows — not incremental"
        );

        // And the fleet-side accounting agrees: every epoch was a pure
        // delta epoch that shipped fewer rows than a full publish.
        let stats = delta_fleet.router_stats().pipeline.unwrap();
        assert_eq!(stats.epochs_published, 3);
        assert_eq!(stats.delta_epochs, 3, "{kind:?}: a publication fell back");
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.rows_shipped < stats.rows_total);
        assert_eq!(
            stats.rows_shipped, touched_total,
            "rows shipped must equal rows the trainer touched"
        );

        Arc::try_unwrap(delta_fleet).unwrap().shutdown();
        Arc::try_unwrap(full_fleet).unwrap().shutdown();
    }
}

#[test]
fn mid_replay_delta_refresh_drops_nothing_and_never_mixes_epochs() {
    // The live fleet starts at epoch 1 (trainer's warm model) and is
    // refreshed to epoch 2 by a SABRDELTA publication fired from a
    // dispatcher thread mid-replay.
    let mut trainer = warm_trainer(13);
    let kind = FoldInKind::Esca;
    let sampler = serve_config(kind).sampler;
    let live = Arc::new(local_fleet(trainer.model(), kind));
    let before_model = trainer.model().clone();
    let _ = trainer.take_touched_rows();

    trainer.ingest(stream_batch(6, 41)).unwrap();
    trainer.iterate_incremental();
    let touched = trainer.take_touched_rows();
    let next_snapshot = InferenceSnapshot::from_model(trainer.model(), sampler);

    // References: the unrefreshed baseline, and a fleet refreshed with the
    // FULL snapshot (so matching it also proves delta ≡ full mid-stream).
    let trace = synthesize_trace(&spec(), 160, 53);
    let unrefreshed = Arc::new(local_fleet(&before_model, kind));
    let refreshed = Arc::new(local_fleet(&before_model, kind));
    refreshed.publish(next_snapshot.clone()).unwrap();
    let theta_before = replay_thetas(&unrefreshed, &trace);
    let theta_after = replay_thetas(&refreshed, &trace);
    assert_ne!(
        theta_before, theta_after,
        "the refresh must actually change answers for the mix check to bite"
    );

    // The live replay, with the delta publication injected after 60
    // completions.
    let publisher = Arc::clone(&live);
    let trigger = ChaosTrigger::new(60, move || {
        let epoch = publisher
            .publish_incremental(next_snapshot, &touched, 1)
            .unwrap();
        assert_eq!(epoch, 2);
    });
    let backend: Arc<dyn InferenceBackend> = Arc::clone(&live) as _;
    let outcome = replay_with_chaos(
        &backend,
        &trace,
        &RateProfile::Fixed { qps: 3_000.0 },
        &ReplayConfig {
            threads: 4,
            deadline: Duration::from_secs(10),
            collect_thetas: true,
        },
        Some(&trigger),
    );
    assert!(trigger.fired(), "the publication never fired");
    assert_eq!(
        outcome.ok, outcome.requests,
        "requests dropped during the epoch swap"
    );
    assert_eq!(live.epoch(), 2);
    let stats = live.router_stats().pipeline.unwrap();
    assert_eq!(stats.epochs_published, 1);
    assert_eq!(
        stats.delta_epochs, 1,
        "the mid-stream publication fell back"
    );

    // Every answer is exactly the before- or after-refresh reference —
    // an answer matching neither would mean a fan-out mixed epochs.
    let thetas = outcome.thetas.unwrap();
    let (mut saw_before, mut saw_after) = (0u64, 0u64);
    for (i, theta) in thetas.iter().enumerate() {
        let theta = theta.as_ref().expect("request was answered");
        let matches_before = Some(theta) == theta_before[i].as_ref();
        let matches_after = Some(theta) == theta_after[i].as_ref();
        assert!(
            matches_before || matches_after,
            "request {i}: θ matches neither epoch — a mixed-version fan-out"
        );
        if matches_before {
            saw_before += 1;
        }
        if matches_after {
            saw_after += 1;
        }
    }
    assert!(saw_before > 0, "no request saw the pre-refresh epoch");
    assert!(saw_after > 0, "no request saw the post-refresh epoch");

    Arc::try_unwrap(unrefreshed).unwrap().shutdown();
    Arc::try_unwrap(refreshed).unwrap().shutdown();
    drop(backend);
    Arc::try_unwrap(live).unwrap().shutdown();
}

#[test]
fn serve_while_training_pipeline_drops_nothing_and_lands_on_the_trained_model() {
    // The full composite: a TrainingPipeline drains a feed (publishing
    // every tick) while loadgen replays a trace against its fleet.
    let trainer = warm_trainer(17);
    let pipeline = TrainingPipeline::bootstrap_local(
        trainer,
        N_SHARDS,
        serve_config(FoldInKind::Esca),
        PipelineConfig {
            batch_docs: 12,
            iterations_per_batch: 2,
            publish_every: 1,
            full_refresh_every: 0,
        },
    )
    .unwrap();
    let feed = DocumentFeed::synthetic(
        &SyntheticSpec {
            n_docs: 48,
            ..spec()
        },
        29,
    );
    let trace = synthesize_trace(&spec(), 200, 59);
    let (report, pipeline) = saber_loadgen::scenario::serve_while_training(
        pipeline,
        feed,
        &trace,
        &RateProfile::Fixed { qps: 3_000.0 },
        &ReplayConfig {
            threads: 4,
            deadline: Duration::from_secs(10),
            collect_thetas: false,
        },
    )
    .unwrap();
    assert!(report.zero_drops(), "{:?}", report.outcome);
    assert_eq!(report.epochs_published, 4);
    assert_eq!(report.final_epoch, 5);
    assert!(report.rows_shipped < report.rows_total);

    // After the stream, the fleet serves exactly the trainer's final
    // model: a cold boot from it answers bit-identically.
    let cold = local_fleet(pipeline.trainer().model(), FoldInKind::Esca);
    for seed in [0u64, 31, 77] {
        let words = vec![0u32, 17, 42, 199, 17, 3];
        let a = pipeline.router().infer_topics(words.clone(), seed).unwrap();
        let b = cold.infer_topics(words, seed).unwrap();
        assert_eq!(bits(&a.theta), bits(&b.theta));
    }
    cold.shutdown();
    pipeline.shutdown();
}

/// A `LocalTransport` whose next `fail_stages` staging calls (delta or
/// full) error like a connection dropped mid-upload, before anything is
/// staged on this shard. Everything else is genuine.
#[derive(Debug)]
struct FailingStageTransport {
    inner: LocalTransport,
    fail_stages: AtomicU32,
}

impl FailingStageTransport {
    fn take_fault(&self) -> Result<(), ServeError> {
        let armed = self
            .fail_stages
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if armed {
            return Err(ServeError::Transport {
                detail: "injected staging fault".into(),
                shard: None,
                addr: None,
            });
        }
        Ok(())
    }
}

impl ShardTransport for FailingStageTransport {
    type Pending = <LocalTransport as ShardTransport>::Pending;

    fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Option<Instant>,
        trace: TraceContext,
    ) -> Result<Self::Pending, ServeError> {
        self.inner.submit_partial(words, request, deadline, trace)
    }

    fn top_words(&self, k: usize, n: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        self.inner.top_words(k, n)
    }

    fn shard_info(&self) -> Result<ShardInfo, ServeError> {
        self.inner.shard_info()
    }

    fn observe_epoch(&self) -> Result<u64, ServeError> {
        self.inner.observe_epoch()
    }

    fn prepare_publish(&self, slice: InferenceSnapshot, epoch: u64) -> Result<(), ServeError> {
        self.take_fault()?;
        self.inner.prepare_publish(slice, epoch)
    }

    fn prepare_publish_delta(&self, delta: &DeltaPayload) -> Result<bool, ServeError> {
        self.take_fault()?;
        self.inner.prepare_publish_delta(delta)
    }

    fn commit_publish(&self, epoch: u64) -> Result<u64, ServeError> {
        self.inner.commit_publish(epoch)
    }
}

#[test]
fn failed_publication_retries_with_every_row_since_the_last_success() {
    // Regression (REVIEW): a publication that dies during staging must not
    // lose the drained touched rows. If they vanish, a retry with no
    // training in between drains an *empty* set, and the fleet accepts the
    // empty delta (the base epoch still matches) — silently serving bits
    // diverging from the trainer, forever with full_refresh_every = 0.
    let kind = FoldInKind::Esca;
    let cfg = serve_config(kind);
    let mut trainer = warm_trainer(23);
    let _ = trainer.take_touched_rows(); // the fleet boots on the warm model
    let boot = InferenceSnapshot::from_model(trainer.model(), cfg.sampler);
    let plan = ShardPlan::uniform(trainer.model().vocab_size(), N_SHARDS).unwrap();
    let ranges: Vec<_> = plan.ranges().collect();
    let transports: Vec<FailingStageTransport> = ranges
        .iter()
        .enumerate()
        .map(|(i, range)| FailingStageTransport {
            inner: LocalTransport::with_range(
                TopicServer::start(boot.shard(range.clone()), cfg).unwrap(),
                range.clone(),
            ),
            // The *last* shard fails its first staging call — the nastier
            // abort, with earlier shards already staged but uncommitted.
            fail_stages: AtomicU32::new(u32::from(i == ranges.len() - 1)),
        })
        .collect();
    let router = Arc::new(ShardRouter::with_transports(plan, transports, cfg).unwrap());
    let mut pipeline = TrainingPipeline::new(
        trainer,
        Arc::clone(&router),
        PipelineConfig {
            batch_docs: 3,
            iterations_per_batch: 1,
            publish_every: 1,
            full_refresh_every: 0,
        },
    )
    .unwrap();

    // Tick 1 ingests batch A; its publication hits the injected fault.
    let err = pipeline.tick(stream_batch(3, 301)).unwrap_err();
    assert!(matches!(err, PipelineError::Serve(_)), "{err}");
    assert_eq!(
        pipeline.served_epoch(),
        1,
        "failed publication moved the base"
    );
    assert_eq!(router.epoch(), 1, "failed publication committed anyway");

    // The immediate retry a daemon would issue — no training in between,
    // so the only source of rows is the rolled-back drain. It must ship
    // batch A's rows as a delta against the still-served epoch 1.
    let published = pipeline.push_epoch().expect("the retry publication");
    assert_eq!(published.epoch, 2);
    assert!(
        published.changed_rows > 0,
        "the retry drained nothing — the failed drain was lost"
    );
    let stats = router.router_stats().pipeline.unwrap();
    assert_eq!(stats.epochs_published, 1);
    assert_eq!(
        stats.delta_epochs, 1,
        "the retry must take the delta path for the lost-rows bug to bite"
    );
    assert_eq!(stats.rows_shipped, published.changed_rows);

    // The crux: the delta-refreshed fleet answers bit-identically to a
    // cold boot of the trainer's current model. Had the drained rows been
    // lost, the empty delta would be accepted and diverge here.
    let trace = synthesize_trace(&spec(), 40, 89);
    let cold = local_fleet(pipeline.trainer().model(), kind);
    for request in trace.requests() {
        let a = router
            .infer_topics(request.words.clone(), request.seed)
            .unwrap();
        let b = cold
            .infer_topics(request.words.clone(), request.seed)
            .unwrap();
        assert_eq!(a.snapshot_version, 2);
        assert_eq!(
            bits(&a.theta),
            bits(&b.theta),
            "retried delta publication diverged from the trainer's model"
        );
    }
    cold.shutdown();

    // And the pipeline keeps flowing: the next tick publishes epoch 3,
    // still bit-identical to a cold boot of the final model.
    let report = pipeline.tick(stream_batch(3, 302)).unwrap();
    assert_eq!(report.published.expect("tick publishes").epoch, 3);
    let cold = local_fleet(pipeline.trainer().model(), kind);
    for request in trace.requests().iter().take(10) {
        let a = router
            .infer_topics(request.words.clone(), request.seed)
            .unwrap();
        let b = cold
            .infer_topics(request.words.clone(), request.seed)
            .unwrap();
        assert_eq!(bits(&a.theta), bits(&b.theta));
    }
    cold.shutdown();
    drop(pipeline);
    Arc::try_unwrap(router).unwrap().shutdown();
}

/// One shard behind its own HTTP listener on localhost TCP.
struct ShardProcess {
    http: HttpServer,
}

fn spawn_tcp_fleet(
    model: &LdaModel,
    plan: &ShardPlan,
    cfg: ServeConfig,
) -> (Vec<ShardProcess>, Vec<HttpTransport>) {
    let snapshot = InferenceSnapshot::from_model(model, cfg.sampler);
    let mut shards = Vec::new();
    let mut transports = Vec::new();
    for range in plan.ranges() {
        let server = Arc::new(TopicServer::start(snapshot.shard(range.clone()), cfg).unwrap());
        let http = HttpServer::bind(
            "127.0.0.1:0",
            server,
            None,
            HttpConfig {
                shard_range: Some((range.start, range.end)),
                ..HttpConfig::default()
            },
        )
        .unwrap();
        transports.push(HttpTransport::connect(http.local_addr()).unwrap());
        shards.push(ShardProcess { http });
    }
    (shards, transports)
}

#[test]
fn delta_publication_over_real_tcp_matches_the_local_fleet() {
    let kind = FoldInKind::Esca;
    let cfg = serve_config(kind);
    let mut trainer = warm_trainer(19);
    let plan = ShardPlan::uniform(trainer.model().vocab_size(), N_SHARDS).unwrap();
    let (shards, transports) = spawn_tcp_fleet(trainer.model(), &plan, cfg);
    let remote = ShardRouter::with_transports(plan, transports, cfg).unwrap();
    let local = Arc::new(local_fleet(trainer.model(), kind));
    let _ = trainer.take_touched_rows();

    // Evolve one epoch with a small batch so each range's delta beats its
    // full slice and actually rides `POST /publish-delta`.
    trainer.ingest(stream_batch(4, 71)).unwrap();
    trainer.iterate_incremental();
    let touched = trainer.take_touched_rows();
    let snapshot = InferenceSnapshot::from_model(trainer.model(), cfg.sampler);
    assert_eq!(
        remote
            .publish_incremental(snapshot.clone(), &touched, 1)
            .unwrap(),
        2
    );
    assert_eq!(
        local
            .publish_incremental(snapshot.clone(), &touched, 1)
            .unwrap(),
        2
    );
    let stats = remote.router_stats().pipeline.unwrap();
    assert_eq!(
        stats.delta_epochs, 1,
        "the TCP publication fell back to full slices"
    );
    assert_eq!(stats.rows_shipped, touched.len() as u64);

    // Refreshed-over-TCP ≡ refreshed-in-process, bit for bit.
    let trace = synthesize_trace(&spec(), 30, 83);
    for request in trace.requests() {
        let a = remote
            .infer_topics(request.words.clone(), request.seed)
            .unwrap();
        let b = local
            .infer_topics(request.words.clone(), request.seed)
            .unwrap();
        assert_eq!(a.snapshot_version, 2);
        assert_eq!(bits(&a.theta), bits(&b.theta), "TCP delta fleet diverged");
    }

    // A stale base over TCP declines the delta (409 on the wire) and the
    // router falls back to full slices — the publication still lands.
    trainer.ingest(stream_batch(4, 72)).unwrap();
    trainer.iterate_incremental();
    let touched = trainer.take_touched_rows();
    let snapshot = InferenceSnapshot::from_model(trainer.model(), cfg.sampler);
    assert_eq!(
        remote.publish_incremental(snapshot, &touched, 1).unwrap(),
        3,
        "stale-base publication must still land as full slices"
    );
    let stats = remote.router_stats().pipeline.unwrap();
    assert_eq!(stats.epochs_published, 2);
    assert_eq!(stats.delta_epochs, 1);
    assert!(stats.fallbacks >= 1);
    assert_eq!(remote.epoch(), 3);

    remote.shutdown();
    Arc::try_unwrap(local).unwrap().shutdown();
    for shard in shards {
        shard.http.shutdown();
    }
}
