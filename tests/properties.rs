//! Cross-crate property-based tests on the public API.

use proptest::prelude::*;
use saberlda::core::config::TokenOrder;
use saberlda::core::count::{rebuild_doc_topic, rebuild_reference};
use saberlda::core::layout::build_chunks;
use saberlda::core::trees::{TopicSampler, WordSampler};
use saberlda::core::{CountRebuild, PreprocessKind};
use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::gpu::MemoryTracker;
use saberlda::{SaberLda, SaberLdaConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The PDOW layout is a permutation of the corpus: token multisets per
    /// document are preserved no matter how many chunks are used.
    #[test]
    fn pdow_layout_preserves_per_document_word_multisets(
        n_docs in 5usize..40,
        n_chunks in 1usize..6,
        seed in 0u64..1000,
    ) {
        let corpus = SyntheticSpec {
            n_docs,
            vocab_size: 60,
            mean_doc_len: 12.0,
            n_topics: 4,
            ..SyntheticSpec::default()
        }
        .generate(seed);
        let chunks = build_chunks(&corpus, n_chunks, TokenOrder::WordMajor, true);
        for chunk in &chunks {
            for local_d in 0..chunk.n_docs {
                let global_d = chunk.doc_start + local_d;
                let mut expected: Vec<u32> = corpus.document(global_d).words().to_vec();
                expected.sort_unstable();
                let mut got: Vec<u32> = chunk
                    .word_ids
                    .iter()
                    .zip(chunk.local_doc_ids.iter())
                    .filter(|(_, &d)| d as usize == local_d)
                    .map(|(&w, _)| w)
                    .collect();
                got.sort_unstable();
                prop_assert_eq!(got, expected);
            }
        }
    }

    /// SSC and the naive sort produce identical document-topic matrices, and
    /// both match the dense reference, for random corpora and topic counts.
    #[test]
    fn count_rebuilds_agree(seed in 0u64..500, k in 2usize..24) {
        let corpus = SyntheticSpec {
            n_docs: 25,
            vocab_size: 50,
            mean_doc_len: 15.0,
            n_topics: 3,
            ..SyntheticSpec::default()
        }
        .generate(seed);
        let mut chunks = build_chunks(&corpus, 2, TokenOrder::WordMajor, true);
        let mut rng = rand::thread_rng();
        for chunk in &mut chunks {
            chunk.randomize_topics(k, &mut rng);
            let mut t1 = MemoryTracker::new(1 << 18);
            let mut t2 = MemoryTracker::new(1 << 18);
            let ssc = rebuild_doc_topic(chunk, k, CountRebuild::Ssc, &mut t1);
            let naive = rebuild_doc_topic(chunk, k, CountRebuild::NaiveSort, &mut t2);
            let reference = rebuild_reference(chunk, k);
            prop_assert_eq!(&ssc, &naive);
            prop_assert_eq!(&ssc, &reference);
        }
    }

    /// Every pre-processed sampling structure samples only positive-weight
    /// topics and agrees with the weights' support.
    #[test]
    fn samplers_never_select_zero_weight_topics(
        weights in proptest::collection::vec(0.0f32..3.0, 2..120),
        u in 0.0f32..1.0,
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        for kind in [PreprocessKind::WaryTree, PreprocessKind::AliasTable, PreprocessKind::FenwickTree] {
            let sampler = WordSampler::build(kind, &weights);
            let k = sampler.sample_with(u);
            prop_assert!(k < weights.len());
            prop_assert!(weights[k] > 0.0, "{kind:?} sampled zero-weight topic {k}");
        }
    }

    /// Training never loses or duplicates tokens, for any chunking, ordering
    /// and small topic count.
    #[test]
    fn training_conserves_tokens(
        n_chunks in 1usize..4,
        k in 2usize..12,
        seed in 0u64..100,
    ) {
        let corpus = SyntheticSpec {
            n_docs: 30,
            vocab_size: 80,
            mean_doc_len: 20.0,
            n_topics: 4,
            ..SyntheticSpec::default()
        }
        .generate(seed);
        let config = SaberLdaConfig::builder()
            .n_topics(k)
            .n_iterations(2)
            .n_chunks(n_chunks)
            .seed(seed)
            .build()
            .unwrap();
        let mut lda = SaberLda::new(config, &corpus).unwrap();
        lda.train();
        prop_assert_eq!(lda.model().word_topic().total(), corpus.n_tokens());
        // Column sums of B equal per-topic token counts, and their total is T.
        let totals: u64 = lda.model().topic_totals().iter().sum();
        prop_assert_eq!(totals, corpus.n_tokens());
    }
}
