//! Differential tests proving cross-machine sharding equivalent to
//! in-process sharding — over real localhost TCP.
//!
//! The contract under test (ISSUE 5): a `ShardRouter<HttpTransport>` whose
//! shards are separate HTTP servers must answer exactly like a
//! `ShardRouter<LocalTransport>` over the same plan —
//!
//! * with **one shard under ESCA**, bit-identically (the chain seed rides
//!   the wire untouched and `f64` counts round-trip exactly);
//! * with **N shards under EM**, within 1e-5 L∞ of the *direct* server
//!   (and, because the JSON codec round-trips `f64` exactly, bit-identical
//!   to the local router);
//! * and across a **remote epoch publication** (stage + commit over HTTP),
//!   without any answer ever mixing two snapshot versions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saberlda::serve::{
    FoldInKind, FoldInParams, HttpConfig, HttpServer, HttpTransport, HttpTransportConfig,
    InferenceSnapshot, ServeConfig, ServeError, ShardPlan, ShardRouter, SnapshotSampler,
    TopicServer,
};
use saberlda::LdaModel;

const VOCAB: usize = 60;
const K: usize = 5;

/// A model with dense random counts — every word genuinely mixes topics,
/// so any cross-machine bookkeeping error shows up in θ.
fn random_model(seed: u64) -> LdaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = LdaModel::new(VOCAB, K, 0.08, 0.01).unwrap();
    for v in 0..VOCAB {
        for k in 0..K {
            model.word_topic_mut()[(v, k)] = rng.gen_range(0u32..20);
        }
        let hot = rng.gen_range(0usize..K);
        model.word_topic_mut()[(v, hot)] += 5;
    }
    model.refresh_probabilities();
    model
}

/// A model whose topics own disjoint word sets, distinguishable per
/// `shift` — for the epoch-swap test.
fn planted_model(shift: usize) -> LdaModel {
    let mut model = LdaModel::new(VOCAB, K, 0.05, 0.01).unwrap();
    for v in 0..VOCAB {
        model.word_topic_mut()[(v, (v + shift) % K)] = 50;
    }
    model.refresh_probabilities();
    model
}

fn random_doc(rng: &mut StdRng, len: usize) -> Vec<u32> {
    (0..len)
        .map(|_| rng.gen_range(0u32..VOCAB as u32))
        .collect()
}

fn config(kind: FoldInKind) -> ServeConfig {
    ServeConfig {
        n_workers: 2,
        fold_in: FoldInParams {
            kind,
            ..FoldInParams::default()
        },
        ..ServeConfig::default()
    }
}

fn bits(theta: &[f32]) -> Vec<u32> {
    theta.iter().map(|x| x.to_bits()).collect()
}

fn linf(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// One shard process stand-in: a `TopicServer` over a snapshot slice
/// behind its own HTTP listener on an OS-assigned localhost port. Real TCP
/// end to end — exactly what a shard on another machine would expose.
struct ShardProcess {
    http: HttpServer,
}

fn spawn_shard_fleet(
    model: &LdaModel,
    plan: &ShardPlan,
    serve_config: ServeConfig,
) -> (Vec<ShardProcess>, Vec<HttpTransport>) {
    let snapshot = InferenceSnapshot::from_model(model, serve_config.sampler);
    let mut shards = Vec::new();
    let mut transports = Vec::new();
    for range in plan.ranges() {
        let server =
            Arc::new(TopicServer::start(snapshot.shard(range.clone()), serve_config).unwrap());
        let http = HttpServer::bind(
            "127.0.0.1:0",
            server,
            None,
            HttpConfig {
                shard_range: Some((range.start, range.end)),
                ..HttpConfig::default()
            },
        )
        .unwrap();
        transports.push(HttpTransport::connect(http.local_addr()).unwrap());
        shards.push(ShardProcess { http });
    }
    (shards, transports)
}

#[test]
fn one_shard_esca_over_tcp_is_bit_identical_to_direct_serving() {
    // The headline acceptance criterion: ESCA through a single remote
    // shard reproduces the direct server's bytes — seed, chain and counts
    // all survive the wire exactly.
    for model_seed in [1u64, 2, 3] {
        let model = random_model(model_seed);
        let cfg = config(FoldInKind::Esca);
        let plan = ShardPlan::single(VOCAB).unwrap();
        let direct = TopicServer::from_model(&model, cfg).unwrap();
        let (shards, transports) = spawn_shard_fleet(&model, &plan, cfg);
        let remote = ShardRouter::with_transports(plan, transports, cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(100 + model_seed);
        for request_seed in 0..6u64 {
            let doc = random_doc(&mut rng, 3 + (request_seed as usize) * 4);
            let a = direct.infer_topics(doc.clone(), request_seed).unwrap();
            let b = remote.infer_topics(doc, request_seed).unwrap();
            assert_eq!(
                bits(&a.theta),
                bits(&b.theta),
                "model {model_seed} seed {request_seed}: remote 1-shard ESCA diverged"
            );
            assert_eq!(a.snapshot_version, b.snapshot_version);
            assert_eq!(a.n_oov, b.n_oov);
        }
        direct.shutdown();
        remote.shutdown();
        for shard in shards {
            shard.http.shutdown();
        }
    }
}

#[test]
fn n_shard_em_over_tcp_matches_local_routing_bit_for_bit() {
    // EM across ≥2 remote shards: within 1e-5 L∞ of the direct server
    // (the acceptance bound), and — stronger — bit-identical to the local
    // router, since θ and the partial counts round-trip the JSON codec
    // exactly and merge in the same shard order.
    let model = random_model(7);
    let cfg = config(FoldInKind::Em);
    let direct = TopicServer::from_model(&model, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let docs: Vec<Vec<u32>> = (0..5).map(|i| random_doc(&mut rng, 4 + i * 5)).collect();
    for n_shards in [2usize, 3] {
        let plan = ShardPlan::uniform(VOCAB, n_shards).unwrap();
        let local = ShardRouter::from_model(&model, plan.clone(), cfg).unwrap();
        let (shards, transports) = spawn_shard_fleet(&model, &plan, cfg);
        let remote = ShardRouter::with_transports(plan, transports, cfg).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            let reference = direct.infer_topics(doc.clone(), i as u64).unwrap();
            let via_local = local.infer_topics(doc.clone(), i as u64).unwrap();
            let via_tcp = remote.infer_topics(doc.clone(), i as u64).unwrap();
            let err = linf(&reference.theta, &via_tcp.theta);
            assert!(
                err <= 1e-5,
                "{n_shards} shards doc {i}: remote EM L∞ = {err} exceeds 1e-5"
            );
            assert_eq!(
                bits(&via_local.theta),
                bits(&via_tcp.theta),
                "{n_shards} shards doc {i}: remote EM diverged from local routing"
            );
            assert_eq!(via_local.n_oov, via_tcp.n_oov);
        }
        local.shutdown();
        remote.shutdown();
        for shard in shards {
            shard.http.shutdown();
        }
    }
    direct.shutdown();
}

#[test]
fn remote_epoch_swap_never_serves_a_mixed_version_answer() {
    // Clients hammer a 3-shard remote EM router while the main thread
    // publishes a shifted model THROUGH THE WIRE (stage + commit per
    // shard). EM is deterministic per epoch, so every legal answer equals
    // one of two precomputed θ vectors bit-for-bit; an answer mixing shard
    // epochs would match neither.
    let cfg = config(FoldInKind::Em);
    let plan = ShardPlan::uniform(VOCAB, 3).unwrap();
    let doc: Vec<u32> = (0..24).map(|i| (i * 7 % VOCAB) as u32).collect();
    let seed = 5u64;

    let expected: Vec<Vec<u32>> = [planted_model(0), planted_model(1)]
        .iter()
        .map(|model| {
            let reference = ShardRouter::from_model(model, plan.clone(), cfg).unwrap();
            let theta = bits(&reference.infer_topics(doc.clone(), seed).unwrap().theta);
            reference.shutdown();
            theta
        })
        .collect();
    assert_ne!(expected[0], expected[1], "epochs must be distinguishable");

    let (shards, transports) = spawn_shard_fleet(&planted_model(0), &plan, cfg);
    let router = Arc::new(ShardRouter::with_transports(plan, transports, cfg).unwrap());
    assert_eq!(router.epoch(), 1);
    let published = Arc::new(AtomicU64::new(1));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let router = Arc::clone(&router);
            let doc = doc.clone();
            let published = Arc::clone(&published);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..2_000u64 {
                    let response = router.infer_topics(doc.clone(), seed).unwrap();
                    match response.snapshot_version {
                        1 => assert_eq!(
                            bits(&response.theta),
                            expected[0],
                            "epoch-1 answer diverged (mixed remote shard set?)"
                        ),
                        2 => {
                            assert!(
                                published.load(Ordering::SeqCst) == 2,
                                "served epoch 2 before it was published"
                            );
                            assert_eq!(
                                bits(&response.theta),
                                expected[1],
                                "epoch-2 answer diverged (mixed remote shard set?)"
                            );
                            return true;
                        }
                        v => panic!("unexpected epoch {v}"),
                    }
                }
                false
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(20));
    let snapshot = InferenceSnapshot::from_model(&planted_model(1), SnapshotSampler::WaryTree);
    published.store(2, Ordering::SeqCst);
    assert_eq!(router.publish(snapshot).unwrap(), 2);

    let exits: Vec<bool> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        exits.iter().all(|&saw| saw),
        "not every client observed the swapped shard set"
    );
    let stats = router.router_stats();
    assert_eq!(stats.epoch, 2);
    assert_eq!(stats.n_shards, 3);
    assert!(stats.shard_requests.iter().all(|&n| n > 0));
    Arc::try_unwrap(router).unwrap().shutdown();
    for shard in shards {
        shard.http.shutdown();
    }
}

#[test]
fn remote_fleet_stats_and_top_words_merge_like_local_ones() {
    let model = random_model(11);
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::uniform(VOCAB, 3).unwrap();
    let local = ShardRouter::from_model(&model, plan.clone(), cfg).unwrap();
    let (shards, transports) = spawn_shard_fleet(&model, &plan, cfg);
    let remote = ShardRouter::with_transports(plan, transports, cfg).unwrap();
    // Same global top-words merge through both transports.
    for k in 0..K {
        assert_eq!(
            local.top_words(k, 7).unwrap(),
            remote.top_words(k, 7).unwrap(),
            "topic {k} top-words diverged over the wire"
        );
    }
    assert!(matches!(
        remote.top_words(K, 3),
        Err(ServeError::BadRequest { .. })
    ));
    // Stats aggregate across remote shards, histograms included.
    for seed in 0..4 {
        remote.infer_topics(vec![0, 21, 41], seed).unwrap();
    }
    let merged = remote.stats();
    assert_eq!(merged.requests, 12, "3 shard requests per document");
    assert_eq!(merged.tokens, 12);
    assert_eq!(merged.latency.count(), 12);
    let per_shard = remote.shard_stats();
    assert_eq!(per_shard.len(), 3);
    assert!(per_shard.iter().all(|s| s.requests == 4));
    assert_eq!(remote.router_stats().shard_requests, vec![4, 4, 4]);
    local.shutdown();
    remote.shutdown();
    for shard in shards {
        shard.http.shutdown();
    }
}

#[test]
fn fleet_validation_rejects_a_mismatched_remote_shard() {
    // A plan wider than the shard actually serving is caught at
    // construction, not at first divergent answer.
    let model = random_model(2);
    let cfg = config(FoldInKind::Esca);
    let narrow_plan = ShardPlan::uniform(VOCAB, 2).unwrap();
    let (shards, transports) = spawn_shard_fleet(&model, &narrow_plan, cfg);
    // Feed those 2 transports to a 2-shard plan over a SMALLER vocabulary:
    // shard widths disagree with what the processes hold.
    let wrong_plan = ShardPlan::uniform(VOCAB - 10, 2).unwrap();
    match ShardRouter::with_transports(wrong_plan, transports, cfg) {
        Err(ServeError::InvalidConfig { detail }) => {
            assert!(detail.contains("words"), "detail was: {detail}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // Fold-in disagreement is also caught: the shard processes serve ESCA
    // parameters, the router wants EM.
    let transports: Vec<HttpTransport> = shards
        .iter()
        .map(|s| HttpTransport::connect(s.http.local_addr()).unwrap())
        .collect();
    assert!(matches!(
        ShardRouter::with_transports(narrow_plan.clone(), transports, config(FoldInKind::Em)),
        Err(ServeError::InvalidConfig { .. })
    ));
    // A transport vector wired up in the WRONG ORDER: both shards are 30
    // words wide, so only the declared global ranges can catch the swap —
    // silently routing words 0..30 to the shard holding 30..60 would
    // produce wrong answers with no error.
    let reversed: Vec<HttpTransport> = shards
        .iter()
        .rev()
        .map(|s| HttpTransport::connect(s.http.local_addr()).unwrap())
        .collect();
    match ShardRouter::with_transports(narrow_plan, reversed, cfg) {
        Err(ServeError::InvalidConfig { detail }) => {
            assert!(detail.contains("global words"), "detail was: {detail}")
        }
        other => panic!("expected InvalidConfig for reversed transports, got {other:?}"),
    }
    for shard in shards {
        shard.http.shutdown();
    }
}

#[test]
fn a_shard_process_boots_from_a_saved_snapshot() {
    // The persistence satellite end to end: slice a snapshot, save it to
    // disk, boot a "shard process" from the file, and get bit-identical
    // fan-out answers.
    let model = random_model(21);
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::uniform(VOCAB, 2).unwrap();
    let snapshot = InferenceSnapshot::from_model(&model, cfg.sampler);
    let dir = std::env::temp_dir().join("saberlda_remote_sharding_test");
    std::fs::create_dir_all(&dir).unwrap();

    let mut shards = Vec::new();
    let mut transports = Vec::new();
    for (s, range) in plan.ranges().enumerate() {
        let path = dir.join(format!("shard-{s}.snap"));
        snapshot.shard(range.clone()).save_file(&path).unwrap();
        let from_disk = InferenceSnapshot::load_file(&path).unwrap();
        let server = Arc::new(TopicServer::start(from_disk, cfg).unwrap());
        let http = HttpServer::bind(
            "127.0.0.1:0",
            server,
            None,
            HttpConfig {
                shard_range: Some((range.start, range.end)),
                ..HttpConfig::default()
            },
        )
        .unwrap();
        transports.push(HttpTransport::connect(http.local_addr()).unwrap());
        shards.push(ShardProcess { http });
        std::fs::remove_file(&path).ok();
    }
    let remote = ShardRouter::with_transports(plan.clone(), transports, cfg).unwrap();
    let local = ShardRouter::start(snapshot, plan, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    for seed in 0..4u64 {
        let doc = random_doc(&mut rng, 12);
        let a = local.infer_topics(doc.clone(), seed).unwrap();
        let b = remote.infer_topics(doc, seed).unwrap();
        assert_eq!(
            bits(&a.theta),
            bits(&b.theta),
            "disk-booted shard fleet diverged"
        );
    }
    local.shutdown();
    remote.shutdown();
    for shard in shards {
        shard.http.shutdown();
    }
}

#[test]
fn transport_config_knobs_reject_degenerate_values() {
    assert!(matches!(
        HttpTransport::connect_with(
            "127.0.0.1:1",
            HttpTransportConfig {
                queue_depth: 0,
                ..HttpTransportConfig::default()
            }
        ),
        Err(ServeError::InvalidConfig { .. })
    ));
}
