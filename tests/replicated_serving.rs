//! Differential suite for the replicated, self-healing shard fleet
//! (ISSUE 9): replica sets must change *availability*, never *answers*.
//!
//! Contracts under test:
//!
//! * a replicated local fleet answers bit-identically to the
//!   single-replica router over the same plan — replica selection is
//!   seed-deterministic and replicas serve identical slices;
//! * killing a replica mid-stream over real TCP drops nothing and leaves
//!   ESCA θ bit-identical (EM within 1e-5 L∞ of direct serving and
//!   bit-identical to local routing), version-pure across the failure;
//! * a replica's circuit breaker trips after repeated transport failures
//!   and re-admits once a health probe sees the replica back;
//! * hedged requests fire under a zero hedge delay and never produce an
//!   answer mixing two snapshot versions, even mid-publication;
//! * **regression (deadline-skew bug)**: a fan-out that keeps observing
//!   version skew fails with `DeadlineExceeded`, not `ShardVersionSkew`,
//!   once the caller's deadline has passed;
//! * **regression (transient-transport bug)**: one transient transport
//!   failure costs one bounded retry (counted, traced), not the request;
//! * the router-backed `GET /healthz` degrades to 503 when a plan range
//!   has lost every replica;
//! * a loadgen chaos replay (kill a replica after N requests) drops
//!   nothing and replays θ bit-identically to the healthy fleet.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saber_loadgen::replay::{
    replay, replay_model, replay_with_chaos, ChaosTrigger, RateProfile, ReplayConfig, Topology,
    TopologyHandle,
};
use saber_loadgen::synth::synthesize_trace;
use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::serve::{
    derive_replica_choice, derive_shard_seed, FoldInKind, FoldInParams, HttpConfig, HttpServer,
    HttpTransport, InferenceSnapshot, LocalTransport, PartialRequest, PartialResponse,
    PendingPartial, PollOutcome, ReplicaConfig, ServeConfig, ServeError, ShardInfo, ShardPlan,
    ShardRouter, ShardTransport, TopicServer,
};
use saberlda::trace::{TraceBuilder, TraceContext, TraceId};
use saberlda::LdaModel;

const VOCAB: usize = 60;
const K: usize = 5;

fn random_model(seed: u64) -> LdaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = LdaModel::new(VOCAB, K, 0.08, 0.01).unwrap();
    for v in 0..VOCAB {
        for k in 0..K {
            model.word_topic_mut()[(v, k)] = rng.gen_range(0u32..20);
        }
        let hot = rng.gen_range(0usize..K);
        model.word_topic_mut()[(v, hot)] += 5;
    }
    model.refresh_probabilities();
    model
}

fn planted_model(shift: usize) -> LdaModel {
    let mut model = LdaModel::new(VOCAB, K, 0.05, 0.01).unwrap();
    for v in 0..VOCAB {
        model.word_topic_mut()[(v, (v + shift) % K)] = 50;
    }
    model.refresh_probabilities();
    model
}

fn random_doc(rng: &mut StdRng, len: usize) -> Vec<u32> {
    (0..len)
        .map(|_| rng.gen_range(0u32..VOCAB as u32))
        .collect()
}

fn config(kind: FoldInKind) -> ServeConfig {
    ServeConfig {
        n_workers: 2,
        fold_in: FoldInParams {
            kind,
            ..FoldInParams::default()
        },
        ..ServeConfig::default()
    }
}

fn bits(theta: &[f32]) -> Vec<u32> {
    theta.iter().map(|x| x.to_bits()).collect()
}

fn linf(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// A replicated shard fleet over real localhost TCP: `replicas` HTTP
/// listeners per plan range, each its own `TopicServer` over the same
/// slice. Servers ride in `Option` so a test can kill one mid-stream.
fn spawn_replicated_fleet(
    model: &LdaModel,
    plan: &ShardPlan,
    replicas: usize,
    serve_config: ServeConfig,
) -> (Vec<Vec<Option<HttpServer>>>, Vec<Vec<HttpTransport>>) {
    let snapshot = InferenceSnapshot::from_model(model, serve_config.sampler);
    let mut fleet = Vec::new();
    let mut sets = Vec::new();
    for range in plan.ranges() {
        let mut servers = Vec::new();
        let mut transports = Vec::new();
        for _ in 0..replicas {
            let server =
                Arc::new(TopicServer::start(snapshot.shard(range.clone()), serve_config).unwrap());
            let http = HttpServer::bind(
                "127.0.0.1:0",
                server,
                None,
                HttpConfig {
                    shard_range: Some((range.start, range.end)),
                    ..HttpConfig::default()
                },
            )
            .unwrap();
            transports.push(HttpTransport::connect(http.local_addr()).unwrap());
            servers.push(Some(http));
        }
        fleet.push(servers);
        sets.push(transports);
    }
    (fleet, sets)
}

fn shutdown_fleet(fleet: Vec<Vec<Option<HttpServer>>>) {
    for server in fleet.into_iter().flatten().flatten() {
        server.shutdown();
    }
}

/// Seeds whose deterministic replica choice for `shard` lands on
/// `replica` — so a test can aim requests at a specific (possibly dead)
/// replica.
fn seeds_choosing(shard: usize, replica: usize, n_replicas: usize, count: usize) -> Vec<u64> {
    (0..10_000u64)
        .filter(|&seed| derive_replica_choice(seed, shard, n_replicas) == replica)
        .take(count)
        .collect()
}

// ---------------------------------------------------------------------------
// Replication never changes answers
// ---------------------------------------------------------------------------

#[test]
fn replicated_local_fleet_is_bit_identical_to_single_replica() {
    // The foundation of every failover guarantee: replicas serve identical
    // slices with identical shard-derived seeds, so WHICH replica answers
    // can never show up in θ.
    for kind in [FoldInKind::Esca, FoldInKind::Em] {
        let model = random_model(11);
        let cfg = config(kind);
        let plan = ShardPlan::uniform(VOCAB, 2).unwrap();
        let single = ShardRouter::from_model(&model, plan.clone(), cfg).unwrap();
        for n_replicas in [2usize, 3] {
            let snapshot = InferenceSnapshot::from_model(&model, cfg.sampler);
            let replicated = ShardRouter::start_replicated(
                snapshot,
                plan.clone(),
                cfg,
                n_replicas,
                ReplicaConfig::default(),
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(50);
            for seed in 0..8u64 {
                let doc = random_doc(&mut rng, 4 + (seed as usize) * 3);
                let a = single.infer_topics(doc.clone(), seed).unwrap();
                let b = replicated.infer_topics(doc, seed).unwrap();
                assert_eq!(
                    bits(&a.theta),
                    bits(&b.theta),
                    "{kind:?} seed {seed}: {n_replicas}-replica fleet diverged from single-replica"
                );
                assert_eq!(a.snapshot_version, b.snapshot_version);
                assert_eq!(a.n_oov, b.n_oov);
            }
            replicated.shutdown();
        }
        single.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Kill a replica mid-stream — differential proof over real TCP
// ---------------------------------------------------------------------------

#[test]
fn killed_replica_mid_stream_keeps_esca_answers_bit_identical() {
    let model = random_model(3);
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::uniform(VOCAB, 2).unwrap();
    let reference = ShardRouter::from_model(&model, plan.clone(), cfg).unwrap();

    let (mut fleet, sets) = spawn_replicated_fleet(&model, &plan, 2, cfg);
    let router = ShardRouter::with_replica_sets(plan, sets, cfg, ReplicaConfig::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(77);
    // Pre-kill phase: any seed. Post-kill phase: seeds whose shard-0
    // replica choice IS the dead replica, so the failover path is
    // genuinely exercised, not dodged by selection.
    let before: Vec<u64> = (0..6).collect();
    let after = seeds_choosing(0, 1, 2, 6);
    let docs: Vec<Vec<u32>> = (0..before.len() + after.len())
        .map(|i| random_doc(&mut rng, 5 + i * 2))
        .collect();

    for (i, &seed) in before.iter().enumerate() {
        let a = reference.infer_topics(docs[i].clone(), seed).unwrap();
        let b = router.infer_topics(docs[i].clone(), seed).unwrap();
        assert_eq!(bits(&a.theta), bits(&b.theta), "pre-kill doc {i} diverged");
        assert_eq!(b.snapshot_version, 1, "pre-kill doc {i} off-version");
    }

    // Kill shard 0's replica 1 mid-stream — in-flight and future requests
    // aimed at it must fail over, not fail.
    fleet[0][1].take().unwrap().shutdown();

    for (j, &seed) in after.iter().enumerate() {
        let i = before.len() + j;
        let a = reference.infer_topics(docs[i].clone(), seed).unwrap();
        let b = router
            .infer_topics(docs[i].clone(), seed)
            .unwrap_or_else(|e| panic!("post-kill doc {i} dropped: {e:?}"));
        assert_eq!(bits(&a.theta), bits(&b.theta), "post-kill doc {i} diverged");
        assert_eq!(b.snapshot_version, 1, "post-kill doc {i} off-version");
    }

    let stats = router.router_stats();
    assert!(
        stats.transport_retries >= 1,
        "post-kill requests aimed at the dead replica must have retried: {stats:?}"
    );
    assert_eq!(stats.requests, (before.len() + after.len()) as u64);

    reference.shutdown();
    router.shutdown();
    shutdown_fleet(fleet);
}

#[test]
fn killed_replica_mid_stream_keeps_em_answers_within_tolerance() {
    let model = random_model(7);
    let cfg = config(FoldInKind::Em);
    let plan = ShardPlan::uniform(VOCAB, 2).unwrap();
    let direct = TopicServer::from_model(&model, cfg).unwrap();
    let local = ShardRouter::from_model(&model, plan.clone(), cfg).unwrap();

    let (mut fleet, sets) = spawn_replicated_fleet(&model, &plan, 2, cfg);
    let router = ShardRouter::with_replica_sets(plan, sets, cfg, ReplicaConfig::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(13);
    let seeds = seeds_choosing(1, 0, 2, 8);
    let docs: Vec<Vec<u32>> = seeds
        .iter()
        .enumerate()
        .map(|(i, _)| random_doc(&mut rng, 6 + i * 3))
        .collect();

    // Kill shard 1's replica 0 — every one of these seeds prefers it
    // there, so each EM round's fan-out to shard 1 must fail over.
    fleet[1][0].take().unwrap().shutdown();

    for (i, (&seed, doc)) in seeds.iter().zip(&docs).enumerate() {
        let reference = direct.infer_topics(doc.clone(), seed).unwrap();
        let via_local = local.infer_topics(doc.clone(), seed).unwrap();
        let answer = router
            .infer_topics(doc.clone(), seed)
            .unwrap_or_else(|e| panic!("post-kill EM doc {i} dropped: {e:?}"));
        let err = linf(&reference.theta, &answer.theta);
        assert!(
            err <= 1e-5,
            "post-kill EM doc {i}: L∞ = {err} vs direct exceeds 1e-5"
        );
        assert_eq!(
            bits(&via_local.theta),
            bits(&answer.theta),
            "post-kill EM doc {i} diverged from local routing"
        );
        assert_eq!(
            answer.snapshot_version, 1,
            "post-kill EM doc {i} off-version"
        );
    }

    direct.shutdown();
    local.shutdown();
    router.shutdown();
    shutdown_fleet(fleet);
}

// ---------------------------------------------------------------------------
// Mock transports for deterministic failure injection
// ---------------------------------------------------------------------------

fn injected_transport_error() -> ServeError {
    ServeError::Transport {
        detail: "injected fault".into(),
        shard: None,
        addr: None,
    }
}

/// Delegates to a `LocalTransport` but refuses everything while `dead` —
/// a deterministic stand-in for an unreachable replica.
#[derive(Debug)]
struct FlakyTransport {
    inner: LocalTransport,
    dead: Arc<AtomicBool>,
}

impl ShardTransport for FlakyTransport {
    type Pending = <LocalTransport as ShardTransport>::Pending;

    fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Option<Instant>,
        trace: TraceContext,
    ) -> Result<Self::Pending, ServeError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(injected_transport_error());
        }
        self.inner.submit_partial(words, request, deadline, trace)
    }

    fn top_words(&self, k: usize, n: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        self.inner.top_words(k, n)
    }

    fn shard_info(&self) -> Result<ShardInfo, ServeError> {
        self.inner.shard_info()
    }

    fn observe_epoch(&self) -> Result<u64, ServeError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(injected_transport_error());
        }
        self.inner.observe_epoch()
    }

    fn prepare_publish(&self, slice: InferenceSnapshot, epoch: u64) -> Result<(), ServeError> {
        self.inner.prepare_publish(slice, epoch)
    }

    fn commit_publish(&self, epoch: u64) -> Result<u64, ServeError> {
        self.inner.commit_publish(epoch)
    }
}

fn local_transport(model: &LdaModel, cfg: ServeConfig) -> LocalTransport {
    let snapshot = InferenceSnapshot::from_model(model, cfg.sampler);
    let server = TopicServer::start(snapshot.shard(0..VOCAB as u32), cfg).unwrap();
    LocalTransport::with_range(server, 0..VOCAB as u32)
}

#[test]
fn breaker_trips_on_repeated_failures_and_readmits_after_recovery() {
    let model = random_model(21);
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::single(VOCAB).unwrap();
    let reference = TopicServer::from_model(&model, cfg).unwrap();

    let dead = Arc::new(AtomicBool::new(false));
    let replicas = vec![vec![
        FlakyTransport {
            inner: local_transport(&model, cfg),
            dead: Arc::new(AtomicBool::new(false)),
        },
        FlakyTransport {
            inner: local_transport(&model, cfg),
            dead: Arc::clone(&dead),
        },
    ]];
    let router = ShardRouter::with_replica_sets(
        plan,
        replicas,
        cfg,
        ReplicaConfig {
            failure_threshold: 1,
            ..ReplicaConfig::default()
        },
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(4);
    let seeds = seeds_choosing(0, 1, 2, 4);

    // Healthy: requests aimed at replica 1 answer there, bit-identically
    // to direct serving.
    let doc = random_doc(&mut rng, 9);
    let healthy = router.infer_topics(doc.clone(), seeds[0]).unwrap();
    assert_eq!(
        bits(&reference.infer_topics(doc.clone(), seeds[0]).unwrap().theta),
        bits(&healthy.theta),
    );
    assert_eq!(router.router_stats().breaker_trips, 0);

    // Replica 1 dies. The next request aimed at it fails over at submit
    // time, and with failure_threshold=1 the breaker trips immediately.
    dead.store(true, Ordering::SeqCst);
    let failed_over = router.infer_topics(doc.clone(), seeds[1]).unwrap();
    assert_eq!(
        bits(&reference.infer_topics(doc.clone(), seeds[1]).unwrap().theta),
        bits(&failed_over.theta),
        "failover changed the answer"
    );
    let stats = router.router_stats();
    assert!(stats.breaker_trips >= 1, "breaker never tripped: {stats:?}");
    assert_eq!(
        stats.replica_health,
        vec![vec![true, false]],
        "tripped replica still reported admitted"
    );

    // Replica recovers; a health probe sees it and re-admits.
    dead.store(false, Ordering::SeqCst);
    let health = router.fleet_health();
    assert!(!health.degraded);
    assert!(
        health.shards[0][1].reachable && health.shards[0][1].admitted,
        "probe did not re-admit the recovered replica: {health:?}"
    );
    let stats = router.router_stats();
    assert!(
        stats.breaker_readmits >= 1,
        "re-admission not counted: {stats:?}"
    );
    assert_eq!(stats.replica_health, vec![vec![true, true]]);

    // And it serves again, still bit-identically.
    let recovered = router.infer_topics(doc.clone(), seeds[2]).unwrap();
    assert_eq!(
        bits(&reference.infer_topics(doc.clone(), seeds[2]).unwrap().theta),
        bits(&recovered.theta)
    );

    reference.shutdown();
    router.shutdown();
}

// ---------------------------------------------------------------------------
// Hedged requests
// ---------------------------------------------------------------------------

#[test]
fn hedged_requests_fire_and_never_mix_versions() {
    // A zero hedge delay hedges essentially every request while the main
    // thread publishes alternating planted models through the router. ESCA
    // is deterministic per (words, seed, snapshot), so every legal answer
    // equals one of two precomputed θ vectors bit-for-bit — an answer
    // stitched from two replicas on different versions would match
    // neither.
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::single(VOCAB).unwrap();
    let doc: Vec<u32> = (0..18).map(|i| (i * 7 % VOCAB) as u32).collect();
    let seed = 9u64;

    let expected: Vec<Vec<u32>> = [planted_model(0), planted_model(1)]
        .iter()
        .map(|model| {
            let reference = TopicServer::from_model(model, cfg).unwrap();
            let theta = bits(&reference.infer_topics(doc.clone(), seed).unwrap().theta);
            reference.shutdown();
            theta
        })
        .collect();
    assert_ne!(expected[0], expected[1], "versions must be distinguishable");

    let model = planted_model(0);
    let replicas = vec![vec![
        local_transport(&model, cfg),
        local_transport(&model, cfg),
    ]];
    let router = Arc::new(
        ShardRouter::with_replica_sets(
            plan,
            replicas,
            cfg,
            ReplicaConfig {
                hedge_delay: Some(Duration::ZERO),
                ..ReplicaConfig::default()
            },
        )
        .unwrap(),
    );

    let publisher = {
        let router = Arc::clone(&router);
        std::thread::spawn(move || {
            for round in 0..30usize {
                router
                    .publish_model(&planted_model((round + 1) % 2))
                    .unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    for i in 0..300u32 {
        let response = router.infer_topics(doc.clone(), seed).unwrap();
        // Version v serves planted_model((v - 1) % 2).
        let shift = ((response.snapshot_version - 1) % 2) as usize;
        assert_eq!(
            bits(&response.theta),
            expected[shift],
            "request {i} (version {}) mixed replica versions",
            response.snapshot_version
        );
    }
    publisher.join().unwrap();

    let stats = router.router_stats();
    assert!(
        stats.hedges >= 1,
        "zero hedge delay over 300 requests never hedged: {stats:?}"
    );

    match Arc::try_unwrap(router) {
        Ok(router) => router.shutdown(),
        Err(_) => panic!("router still shared"),
    }
}

// ---------------------------------------------------------------------------
// Regression: skew retries must honour the deadline
// ---------------------------------------------------------------------------

/// Rewrites every response's snapshot version to a fresh counter value
/// (and sleeps a little first), so a 2-shard fan-out observes version
/// skew on every attempt — the pathological publish storm, on demand.
#[derive(Debug)]
struct SkewTransport {
    inner: LocalTransport,
    version: Arc<AtomicU64>,
}

#[derive(Debug)]
struct SkewPending {
    inner: <LocalTransport as ShardTransport>::Pending,
    version: Arc<AtomicU64>,
}

impl PendingPartial for SkewPending {
    fn wait(self, _deadline: Option<Instant>) -> Result<PartialResponse, ServeError> {
        std::thread::sleep(Duration::from_millis(5));
        // Ignore the caller's deadline on the inner wait: the reply is
        // already computed, and the point of this mock is to prove the
        // DEADLINE error comes from the router's retry check, not the leg.
        self.inner.wait(None).map(|mut response| {
            response.snapshot_version = self.version.fetch_add(1, Ordering::SeqCst);
            response
        })
    }

    fn wait_until(self, _until: Instant) -> PollOutcome<Self> {
        PollOutcome::Ready(self.wait(None))
    }
}

impl ShardTransport for SkewTransport {
    type Pending = SkewPending;

    fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Option<Instant>,
        trace: TraceContext,
    ) -> Result<Self::Pending, ServeError> {
        Ok(SkewPending {
            inner: self.inner.submit_partial(words, request, deadline, trace)?,
            version: Arc::clone(&self.version),
        })
    }

    fn top_words(&self, k: usize, n: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        self.inner.top_words(k, n)
    }

    fn shard_info(&self) -> Result<ShardInfo, ServeError> {
        self.inner.shard_info()
    }

    fn observe_epoch(&self) -> Result<u64, ServeError> {
        self.inner.observe_epoch()
    }

    fn prepare_publish(&self, slice: InferenceSnapshot, epoch: u64) -> Result<(), ServeError> {
        self.inner.prepare_publish(slice, epoch)
    }

    fn commit_publish(&self, epoch: u64) -> Result<u64, ServeError> {
        self.inner.commit_publish(epoch)
    }
}

fn skew_router() -> ShardRouter<SkewTransport> {
    let model = random_model(31);
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::uniform(VOCAB, 2).unwrap();
    let snapshot = InferenceSnapshot::from_model(&model, cfg.sampler);
    let version = Arc::new(AtomicU64::new(100));
    let transports = plan
        .ranges()
        .map(|range| {
            let server = TopicServer::start(snapshot.shard(range.clone()), cfg).unwrap();
            SkewTransport {
                inner: LocalTransport::with_range(server, range),
                version: Arc::clone(&version),
            }
        })
        .collect::<Vec<_>>();
    ShardRouter::with_transports(plan, transports, cfg).unwrap()
}

#[test]
fn skew_retry_honours_the_deadline() {
    // Doc touching both shards, so every attempt sees two (always
    // different) versions.
    let doc: Vec<u32> = vec![1, 2, 31, 32];

    // Without a deadline the router exhausts its retries and reports skew
    // — the mock really does manufacture persistent skew.
    let router = skew_router();
    match router.infer_topics(doc.clone(), 0) {
        Err(ServeError::ShardVersionSkew) => {}
        other => panic!("expected ShardVersionSkew without a deadline, got {other:?}"),
    }
    assert_eq!(router.router_stats().skew_retries, 3);
    router.shutdown();

    // With a deadline that expires during the retries, the router must
    // fail with DeadlineExceeded — the bug reported exhausted-skew
    // instead, burning a full extra fan-out after the caller's budget was
    // already gone.
    let router = skew_router();
    match router.infer_with_deadline(doc, 0, Duration::from_millis(25)) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded past the deadline, got {other:?}"),
    }
    assert!(
        router.router_stats().skew_retries >= 1,
        "the deadline check must sit on the retry path, not before the first attempt"
    );
    router.shutdown();
}

// ---------------------------------------------------------------------------
// Regression: transient transport failure costs one retry, not the request
// ---------------------------------------------------------------------------

/// First submission hands back a pending that fails its wait with a
/// transport error; every later submission is genuine. The shape of a
/// connection reset racing a reply.
#[derive(Debug)]
struct FailOnceTransport {
    inner: LocalTransport,
    submissions: AtomicU32,
}

#[derive(Debug)]
enum FailOncePending {
    Fail,
    Real(<LocalTransport as ShardTransport>::Pending),
}

impl PendingPartial for FailOncePending {
    fn wait(self, deadline: Option<Instant>) -> Result<PartialResponse, ServeError> {
        match self {
            FailOncePending::Fail => Err(injected_transport_error()),
            FailOncePending::Real(pending) => pending.wait(deadline),
        }
    }

    fn wait_until(self, until: Instant) -> PollOutcome<Self> {
        match self {
            FailOncePending::Fail => PollOutcome::Ready(Err(injected_transport_error())),
            FailOncePending::Real(pending) => match pending.wait_until(until) {
                PollOutcome::Ready(result) => PollOutcome::Ready(result),
                PollOutcome::Pending(pending) => {
                    PollOutcome::Pending(FailOncePending::Real(pending))
                }
            },
        }
    }
}

impl ShardTransport for FailOnceTransport {
    type Pending = FailOncePending;

    fn submit_partial(
        &self,
        words: Vec<u32>,
        request: PartialRequest,
        deadline: Option<Instant>,
        trace: TraceContext,
    ) -> Result<Self::Pending, ServeError> {
        if self.submissions.fetch_add(1, Ordering::SeqCst) == 0 {
            return Ok(FailOncePending::Fail);
        }
        Ok(FailOncePending::Real(
            self.inner.submit_partial(words, request, deadline, trace)?,
        ))
    }

    fn top_words(&self, k: usize, n: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        self.inner.top_words(k, n)
    }

    fn shard_info(&self) -> Result<ShardInfo, ServeError> {
        self.inner.shard_info()
    }

    fn observe_epoch(&self) -> Result<u64, ServeError> {
        self.inner.observe_epoch()
    }

    fn prepare_publish(&self, slice: InferenceSnapshot, epoch: u64) -> Result<(), ServeError> {
        self.inner.prepare_publish(slice, epoch)
    }

    fn commit_publish(&self, epoch: u64) -> Result<u64, ServeError> {
        self.inner.commit_publish(epoch)
    }
}

#[test]
fn transient_transport_failure_costs_one_bounded_retry() {
    let model = random_model(41);
    let cfg = config(FoldInKind::Esca);
    let reference = TopicServer::from_model(&model, cfg).unwrap();
    let router = ShardRouter::with_transports(
        ShardPlan::single(VOCAB).unwrap(),
        vec![FailOnceTransport {
            inner: local_transport(&model, cfg),
            submissions: AtomicU32::new(0),
        }],
        cfg,
    )
    .unwrap();

    let doc: Vec<u32> = (0..12).map(|i| (i * 5 % VOCAB) as u32).collect();
    let seed = 2u64;
    let mut trace = TraceBuilder::new(TraceId::mint());
    let root = trace.begin(None, "ingress");
    let answer = router
        .infer_with_trace(doc.clone(), seed, Duration::from_secs(5), &mut trace, root)
        .unwrap_or_else(|e| panic!("a single transient failure dropped the request: {e:?}"));
    trace.end(root);
    let done = trace.finish();

    // Same bytes as if nothing had gone wrong (shard 0's derived seed is
    // the raw request seed, so direct serving is the reference).
    assert_eq!(derive_shard_seed(seed, 0), seed);
    let expected = reference.infer_topics(doc, seed).unwrap();
    assert_eq!(bits(&expected.theta), bits(&answer.theta));

    // Exactly one bounded retry, counted and traced.
    let stats = router.router_stats();
    assert_eq!(stats.transport_retries, 1, "{stats:?}");
    let events: Vec<&str> = done
        .spans
        .iter()
        .flat_map(|span| span.events.iter())
        .map(|event| event.message.as_str())
        .collect();
    assert!(
        events.contains(&"transport retry shard 0"),
        "retry not announced in the trace: {events:?}"
    );

    reference.shutdown();
    router.shutdown();
}

// ---------------------------------------------------------------------------
// Router-backed /healthz degrades when a range loses every replica
// ---------------------------------------------------------------------------

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_string();
    (status, body)
}

#[test]
fn router_healthz_degrades_to_503_when_a_range_loses_every_replica() {
    let model = random_model(51);
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::single(VOCAB).unwrap();
    let (mut fleet, sets) = spawn_replicated_fleet(&model, &plan, 2, cfg);
    let router = Arc::new(
        ShardRouter::with_replica_sets(plan, sets, cfg, ReplicaConfig::default()).unwrap(),
    );
    let front = HttpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        None,
        HttpConfig::default(),
    )
    .unwrap();

    // Healthy: 200, and the body carries per-replica fleet health.
    let (status, body) = http_get(front.local_addr(), "/healthz");
    assert_eq!(status, 200, "healthy fleet: {body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(
        body.contains("\"fleet\":[[{\"reachable\":true,\"admitted\":true},{\"reachable\":true,\"admitted\":true}]]"),
        "{body}"
    );

    // One replica down: still serving, still 200 — that is the point of
    // replication.
    fleet[0][0].take().unwrap().shutdown();
    let (status, body) = http_get(front.local_addr(), "/healthz");
    assert_eq!(status, 200, "one live replica left is not degraded: {body}");
    assert!(body.contains("\"reachable\":false"), "{body}");

    // Every replica of the range down: degraded, 503 — the bug reported
    // 200 \"ok\" while the fleet could not answer a single request.
    fleet[0][1].take().unwrap().shutdown();
    assert!(router.fleet_health().degraded);
    let (status, body) = http_get(front.local_addr(), "/healthz");
    assert_eq!(status, 503, "dead fleet must fail the health check: {body}");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");

    front.shutdown();
    match Arc::try_unwrap(router) {
        Ok(router) => router.shutdown(),
        Err(_) => panic!("router still shared"),
    }
    shutdown_fleet(fleet);
}

// ---------------------------------------------------------------------------
// Loadgen chaos replay: kill a replica under load, drop nothing
// ---------------------------------------------------------------------------

#[test]
fn chaos_replay_kills_a_replica_and_drops_nothing() {
    let trace = synthesize_trace(&SyntheticSpec::small_test(), 60, 0xC0FFEE);
    let model = replay_model(trace.vocab_size() as usize, 8, 7).unwrap();
    let topology = Topology::ReplicatedShards {
        shards: 2,
        replicas: 2,
    };
    let replay_config = ReplayConfig {
        threads: 4,
        deadline: Duration::from_secs(10),
        collect_thetas: true,
    };
    let profile = RateProfile::Fixed { qps: 20_000.0 };

    let healthy = TopologyHandle::build(topology, &model, &ServeConfig::default()).unwrap();
    let baseline = replay(&healthy.backend(), &trace, &profile, &replay_config);
    healthy.shutdown();
    assert_eq!(baseline.ok, baseline.requests, "healthy replay dropped");

    let handle =
        Arc::new(TopologyHandle::build(topology, &model, &ServeConfig::default()).unwrap());
    let chaos = {
        let handle = Arc::clone(&handle);
        ChaosTrigger::new(20, move || {
            assert!(handle.kill_replica(0, 1), "kill target missing");
        })
    };
    let outcome = replay_with_chaos(
        &handle.backend(),
        &trace,
        &profile,
        &replay_config,
        Some(&chaos),
    );
    assert!(chaos.fired(), "chaos trigger never fired");
    drop(chaos);
    assert_eq!(
        outcome.ok, outcome.requests,
        "killing a replica mid-replay dropped requests: {outcome:?}"
    );

    let healthy_thetas = baseline.thetas.expect("collect_thetas");
    let chaos_thetas = outcome.thetas.expect("collect_thetas");
    for (i, (a, b)) in healthy_thetas.iter().zip(chaos_thetas.iter()).enumerate() {
        assert!(a.is_some(), "healthy request {i} has no θ");
        assert_eq!(
            a, b,
            "request {i}: θ changed when a replica died mid-replay"
        );
    }

    match Arc::try_unwrap(handle) {
        Ok(handle) => handle.shutdown(),
        Err(_) => panic!("topology handle still shared"),
    }
}
