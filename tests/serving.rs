//! End-to-end serving: train → publish → concurrent batched inference, with
//! deterministic replay and a mid-stream hot snapshot swap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use saberlda::corpus::synthetic::SyntheticSpec;
use saberlda::serve::{FoldInParams, ServeConfig, SnapshotSampler, TopicServer};
use saberlda::{InferRequest, InferenceSnapshot, LdaModel, SaberLda, SaberLdaConfig};

const K: usize = 4;
const VOCAB: usize = 40;

/// A model whose topics own disjoint word sets: word `v` belongs to topic
/// `(v + shift) % K`.
fn planted_model(shift: usize) -> LdaModel {
    let mut model = LdaModel::new(VOCAB, K, 0.05, 0.01).unwrap();
    for v in 0..VOCAB {
        model.word_topic_mut()[(v, (v + shift) % K)] = 50;
    }
    model.refresh_probabilities();
    model
}

/// A document drawn purely from the words topic `k` owns (at `shift` 0).
fn planted_doc(k: usize, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| (k + K * (i % (VOCAB / K))) as u32)
        .collect()
}

fn server(n_workers: usize, sampler: SnapshotSampler) -> TopicServer {
    TopicServer::from_model(
        &planted_model(0),
        ServeConfig {
            n_workers,
            max_batch: 8,
            sampler,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn trained_model_snapshot_recovers_planted_topics() {
    // Train on a corpus with planted structure, then serve the *trained*
    // model and check inference agrees with training's own view of B̂.
    let corpus = SyntheticSpec {
        n_docs: 200,
        vocab_size: 120,
        mean_doc_len: 40.0,
        n_topics: K,
        ..SyntheticSpec::default()
    }
    .generate(5);
    let config = SaberLdaConfig::builder()
        .n_topics(K)
        .n_iterations(15)
        .seed(1)
        .build()
        .unwrap();
    let mut lda = SaberLda::new(config, &corpus).unwrap();
    lda.train();

    let server = TopicServer::from_model(lda.model(), ServeConfig::default()).unwrap();
    // For each topic, a document made of that topic's top trained words must
    // come back dominated by it.
    for k in 0..K {
        let words: Vec<u32> = lda
            .model()
            .top_words(k, 8)
            .into_iter()
            .flat_map(|(w, _)| [w, w])
            .collect();
        let response = server.infer_topics(words, 17).unwrap();
        assert_eq!(
            response.dominant_topic(),
            k,
            "topic {k}: theta = {:?}",
            response.theta
        );
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_recover_planted_topics_from_four_threads() {
    for sampler in [SnapshotSampler::WaryTree, SnapshotSampler::AliasTable] {
        let server = Arc::new(server(4, sampler));
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let topic = (c + i) % K;
                        let response = server
                            .infer_topics(planted_doc(topic, 12), (c * 100 + i) as u64)
                            .unwrap();
                        assert_eq!(
                            response.dominant_topic(),
                            topic,
                            "{sampler:?}: client {c} request {i}: theta = {:?}",
                            response.theta
                        );
                        assert!(response.theta[topic] > 0.5);
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().unwrap();
        }
        let stats = Arc::try_unwrap(server)
            .map(|s| {
                let stats = s.stats();
                s.shutdown();
                stats
            })
            .expect("all clients joined");
        assert_eq!(stats.requests, 100);
        assert_eq!(stats.tokens, 100 * 12);
        assert!(stats.batches >= 1 && stats.batches <= 100);
    }
}

/// A soft model — every word split between two topics — so inference
/// genuinely depends on the sampling stream (the peaked planted model pins
/// every token and answers identically under any seed).
fn soft_model() -> LdaModel {
    let mut model = LdaModel::new(VOCAB, K, 0.5, 0.01).unwrap();
    for v in 0..VOCAB {
        model.word_topic_mut()[(v, v % K)] = 3;
        model.word_topic_mut()[(v, (v + 1) % K)] = 2;
    }
    model.refresh_probabilities();
    model
}

#[test]
fn fixed_seed_is_bit_identical_across_batch_shapes_and_threads() {
    let server = Arc::new(
        TopicServer::from_model(
            &soft_model(),
            ServeConfig {
                n_workers: 4,
                max_batch: 8,
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );
    let words: Vec<u32> = vec![0, 1, 2, 3, 8, 9, 10, 11, 0, 5];
    let reference = server.infer_topics(words.clone(), 1234).unwrap();

    // Same request replayed alone, inside large mixed batches, and from
    // multiple threads at once: the θ bits never change.
    let in_batch = server
        .infer_batch(
            (0..24)
                .map(|i| InferRequest {
                    words: if i == 13 {
                        words.clone()
                    } else {
                        planted_doc(i % K, 9)
                    },
                    seed: if i == 13 { 1234 } else { i as u64 },
                })
                .collect(),
        )
        .unwrap();
    assert_eq!(in_batch[13].theta, reference.theta);

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let words = words.clone();
            let expected = reference.theta.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let response = server.infer_topics(words.clone(), 1234).unwrap();
                    let got: Vec<u32> = response.theta.iter().map(|x| x.to_bits()).collect();
                    let want: Vec<u32> = expected.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(got, want, "replay diverged");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // A different seed on the same ambiguous document differs.
    let other = server.infer_topics(words, 1235).unwrap();
    assert_ne!(other.theta, reference.theta);
}

#[test]
fn mid_stream_snapshot_swap_is_observed_by_subsequent_requests() {
    let server = Arc::new(server(4, SnapshotSampler::WaryTree));
    let doc = planted_doc(0, 12);

    // Before the swap: version 1, dominant topic 0.
    let before = server.infer_topics(doc.clone(), 9).unwrap();
    assert_eq!(before.snapshot_version, 1);
    assert_eq!(before.dominant_topic(), 0);

    // Client threads hammer the server while the main thread publishes a
    // shifted model (word v moves to topic (v+1) % K) mid-stream. Every
    // response must be consistent: v1 answers say topic 0, v2 answers say
    // topic 1 — never a torn mixture. Each client keeps requesting until it
    // has seen the swap (bounded so a regression fails rather than hangs).
    let published = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let doc = doc.clone();
            let published = Arc::clone(&published);
            std::thread::spawn(move || {
                for i in 0..100_000u64 {
                    let response = server.infer_topics(doc.clone(), i).unwrap();
                    match response.snapshot_version {
                        1 => assert_eq!(response.dominant_topic(), 0),
                        2 => {
                            assert!(
                                published.load(Ordering::SeqCst) == 2,
                                "served v2 before it was published"
                            );
                            assert_eq!(
                                response.dominant_topic(),
                                1,
                                "v2 answer must follow the swapped model: {:?}",
                                response.theta
                            );
                            return true;
                        }
                        v => panic!("unexpected snapshot version {v}"),
                    }
                }
                false
            })
        })
        .collect();

    // Let some v1 traffic through, then swap.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let snapshot = InferenceSnapshot::from_model(&planted_model(1), SnapshotSampler::WaryTree);
    published.store(2, Ordering::SeqCst);
    let version = server.publish(snapshot);
    assert_eq!(version, 2);

    let exits: Vec<bool> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        exits.iter().all(|&saw| saw),
        "not every client observed the swapped snapshot"
    );

    // After the dust settles every new request is served from v2.
    let after = server.infer_topics(doc, 77).unwrap();
    assert_eq!(after.snapshot_version, 2);
    assert_eq!(after.dominant_topic(), 1);
}

#[test]
fn fold_in_params_trade_quality_for_latency() {
    // More sweeps sharpen θ on planted documents; the contract here is just
    // that both settings serve correct answers through the public API.
    let model = planted_model(0);
    for fold_in in [
        FoldInParams {
            burn_in: 1,
            samples: 1,
            ..FoldInParams::default()
        },
        FoldInParams {
            burn_in: 8,
            samples: 16,
            ..FoldInParams::default()
        },
    ] {
        let server = TopicServer::start(
            InferenceSnapshot::from_model(&model, SnapshotSampler::WaryTree),
            ServeConfig {
                n_workers: 2,
                fold_in,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let response = server.infer_topics(planted_doc(2, 16), 3).unwrap();
        assert_eq!(response.dominant_topic(), 2);
        server.shutdown();
    }
}
