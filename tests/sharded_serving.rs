//! Differential tests proving sharded serving equivalent to unsharded
//! serving.
//!
//! The contract under test (ISSUE 4): a [`ShardRouter`] fronting N
//! vocabulary shards must answer exactly like one [`TopicServer`] over the
//! whole model —
//!
//! * with **one shard**, bit-identically (both fold-in kinds);
//! * with **N shards under EM fold-in**, within 1e-5 L∞ (the merge math is
//!   exact; only floating-point summation order differs);
//! * with **N shards under ESCA fold-in**, statistically (independent
//!   per-shard Gibbs chains approximate the cross-shard coupling);
//! * and across a **whole-shard-set hot swap**, without any answer ever
//!   mixing two snapshot versions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saberlda::serve::{
    derive_shard_seed, FoldInKind, FoldInParams, ServeConfig, ShardPlan, ShardRouter,
    SnapshotSampler, TopicServer,
};
use saberlda::{InferenceSnapshot, LdaModel};

const VOCAB: usize = 60;
const K: usize = 5;

/// A model with dense random counts — every word genuinely mixes topics,
/// so any cross-shard bookkeeping error shows up in θ instead of being
/// masked by a peaked posterior.
fn random_model(seed: u64) -> LdaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = LdaModel::new(VOCAB, K, 0.08, 0.01).unwrap();
    for v in 0..VOCAB {
        for k in 0..K {
            model.word_topic_mut()[(v, k)] = rng.gen_range(0u32..20);
        }
        // Guarantee at least one count per word so B̂ rows are well formed.
        let hot = rng.gen_range(0usize..K);
        model.word_topic_mut()[(v, hot)] += 5;
    }
    model.refresh_probabilities();
    model
}

/// A model whose topics own disjoint word sets: word `v` belongs to topic
/// `(v + shift) % K`. Distinguishable per `shift`, for the swap test.
fn planted_model(shift: usize) -> LdaModel {
    let mut model = LdaModel::new(VOCAB, K, 0.05, 0.01).unwrap();
    for v in 0..VOCAB {
        model.word_topic_mut()[(v, (v + shift) % K)] = 50;
    }
    model.refresh_probabilities();
    model
}

fn random_doc(rng: &mut StdRng, len: usize) -> Vec<u32> {
    (0..len)
        .map(|_| rng.gen_range(0u32..VOCAB as u32))
        .collect()
}

fn config(kind: FoldInKind) -> ServeConfig {
    ServeConfig {
        n_workers: 2,
        fold_in: FoldInParams {
            kind,
            ..FoldInParams::default()
        },
        ..ServeConfig::default()
    }
}

fn bits(theta: &[f32]) -> Vec<u32> {
    theta.iter().map(|x| x.to_bits()).collect()
}

fn linf(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn one_shard_router_is_bit_identical_to_direct_serving() {
    // The headline single-shard guarantee, for random corpora and seeds:
    // routing through ShardPlan::single + partial fold-in + merge + finish
    // must reproduce the direct server's bytes under BOTH fold-in kinds.
    for kind in [FoldInKind::Esca, FoldInKind::Em] {
        for model_seed in [1u64, 2, 3] {
            let model = random_model(model_seed);
            let direct = TopicServer::from_model(&model, config(kind)).unwrap();
            let routed =
                ShardRouter::from_model(&model, ShardPlan::single(VOCAB).unwrap(), config(kind))
                    .unwrap();
            let mut rng = StdRng::seed_from_u64(100 + model_seed);
            for request_seed in 0..8u64 {
                let doc = random_doc(&mut rng, 3 + (request_seed as usize) * 4);
                let a = direct.infer_topics(doc.clone(), request_seed).unwrap();
                let b = routed.infer_topics(doc, request_seed).unwrap();
                assert_eq!(
                    bits(&a.theta),
                    bits(&b.theta),
                    "{kind:?} model {model_seed} seed {request_seed}: \
                     1-shard router diverged from direct serving"
                );
                assert_eq!(a.snapshot_version, b.snapshot_version);
                assert_eq!(a.n_oov, b.n_oov);
            }
            direct.shutdown();
            routed.shutdown();
        }
    }
}

#[test]
fn n_shard_em_matches_unsharded_within_1e5_linf() {
    // The exact-merge guarantee across ≥ 3 shard counts: EM fold-in over
    // 2, 3, 5 and 7 shards agrees with the unsharded server to 1e-5 L∞
    // for the same request seed (EM is seed-independent, but the request
    // path still carries the seed end to end).
    let model = random_model(7);
    let direct = TopicServer::from_model(&model, config(FoldInKind::Em)).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let docs: Vec<Vec<u32>> = (0..6).map(|i| random_doc(&mut rng, 4 + i * 5)).collect();
    let references: Vec<Vec<f32>> = docs
        .iter()
        .enumerate()
        .map(|(i, doc)| direct.infer_topics(doc.clone(), i as u64).unwrap().theta)
        .collect();
    for n_shards in [2usize, 3, 5, 7] {
        let routed = ShardRouter::from_model(
            &model,
            ShardPlan::uniform(VOCAB, n_shards).unwrap(),
            config(FoldInKind::Em),
        )
        .unwrap();
        for (i, doc) in docs.iter().enumerate() {
            let response = routed.infer_topics(doc.clone(), i as u64).unwrap();
            let err = linf(&references[i], &response.theta);
            assert!(
                err <= 1e-5,
                "{n_shards} shards, doc {i}: L∞ = {err} exceeds 1e-5\n\
                 unsharded: {:?}\n  sharded: {:?}",
                references[i],
                response.theta
            );
        }
        routed.shutdown();
    }
    direct.shutdown();
}

#[test]
fn n_shard_esca_agrees_statistically_with_unsharded() {
    // Independent per-shard chains lose cross-shard coupling, so ESCA
    // sharding is approximate; with a generous measurement budget the
    // merged posterior mean must still land close and keep the ranking.
    let model = planted_model(0);
    let heavy = ServeConfig {
        fold_in: FoldInParams {
            burn_in: 10,
            samples: 60,
            kind: FoldInKind::Esca,
        },
        ..ServeConfig::default()
    };
    let direct = TopicServer::from_model(&model, heavy).unwrap();
    for n_shards in [2usize, 3, 4] {
        let routed =
            ShardRouter::from_model(&model, ShardPlan::uniform(VOCAB, n_shards).unwrap(), heavy)
                .unwrap();
        for topic in 0..K {
            // A document drawn from one topic's words, spread over shards.
            let doc: Vec<u32> = (0..12).map(|i| (topic + K * (i % 6)) as u32).collect();
            let a = direct.infer_topics(doc.clone(), topic as u64).unwrap();
            let b = routed.infer_topics(doc, topic as u64).unwrap();
            assert_eq!(a.dominant_topic(), topic);
            assert_eq!(
                b.dominant_topic(),
                topic,
                "{n_shards} shards: sharded ESCA lost the dominant topic"
            );
            let err = linf(&a.theta, &b.theta);
            assert!(
                err < 0.05,
                "{n_shards} shards topic {topic}: L∞ = {err}\n\
                 unsharded: {:?}\n  sharded: {:?}",
                a.theta,
                b.theta
            );
        }
        routed.shutdown();
    }
    direct.shutdown();
}

#[test]
fn esca_shard_seeds_derive_from_the_request_seed() {
    // Replaying a request against a multi-shard ESCA router is
    // bit-identical (per-shard seeds are pure functions of the request
    // seed), and changing the request seed changes the per-shard seeds.
    let model = random_model(4);
    let routed = ShardRouter::from_model(
        &model,
        ShardPlan::uniform(VOCAB, 3).unwrap(),
        config(FoldInKind::Esca),
    )
    .unwrap();
    let doc: Vec<u32> = vec![0, 21, 41, 59, 5, 25, 45, 0, 21];
    let a = routed.infer_topics(doc.clone(), 1234).unwrap();
    let b = routed.infer_topics(doc.clone(), 1234).unwrap();
    assert_eq!(bits(&a.theta), bits(&b.theta), "replay diverged");
    let c = routed.infer_topics(doc, 1235).unwrap();
    assert_ne!(a.theta, c.theta, "different seeds must differ");
    for s in 1..3 {
        assert_ne!(derive_shard_seed(1234, s), 1234);
    }
    routed.shutdown();
}

#[test]
fn mid_stream_shard_set_swap_never_serves_a_mixed_version_answer() {
    // Clients hammer a 3-shard EM router while the main thread publishes a
    // shifted model. EM is deterministic per epoch, so every legal answer
    // equals one of two precomputed θ vectors bit-for-bit; an answer mixing
    // shard versions would match neither. Reference routers over the same
    // plan/config provide the per-epoch expectations (the EM trajectory
    // depends only on snapshot contents, split and merge order).
    let plan = || ShardPlan::uniform(VOCAB, 3).unwrap();
    let cfg = config(FoldInKind::Em);
    let doc: Vec<u32> = (0..24).map(|i| (i * 7 % VOCAB) as u32).collect();
    let seed = 5u64;

    let expected: Vec<Vec<u32>> = [planted_model(0), planted_model(1)]
        .iter()
        .map(|model| {
            let reference = ShardRouter::from_model(model, plan(), cfg).unwrap();
            let theta = bits(&reference.infer_topics(doc.clone(), seed).unwrap().theta);
            reference.shutdown();
            theta
        })
        .collect();
    assert_ne!(expected[0], expected[1], "epochs must be distinguishable");

    let router = Arc::new(ShardRouter::from_model(&planted_model(0), plan(), cfg).unwrap());
    let published = Arc::new(AtomicU64::new(1));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let router = Arc::clone(&router);
            let doc = doc.clone();
            let published = Arc::clone(&published);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..50_000u64 {
                    let response = router.infer_topics(doc.clone(), seed).unwrap();
                    match response.snapshot_version {
                        1 => assert_eq!(
                            bits(&response.theta),
                            expected[0],
                            "epoch-1 answer diverged (mixed shard set?)"
                        ),
                        2 => {
                            assert!(
                                published.load(Ordering::SeqCst) == 2,
                                "served epoch 2 before it was published"
                            );
                            assert_eq!(
                                bits(&response.theta),
                                expected[1],
                                "epoch-2 answer diverged (mixed shard set?)"
                            );
                            return true;
                        }
                        v => panic!("unexpected epoch {v}"),
                    }
                }
                false
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(5));
    let snapshot = InferenceSnapshot::from_model(&planted_model(1), SnapshotSampler::WaryTree);
    published.store(2, Ordering::SeqCst);
    assert_eq!(router.publish(snapshot).unwrap(), 2);

    let exits: Vec<bool> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        exits.iter().all(|&saw| saw),
        "not every client observed the swapped shard set"
    );
    let stats = router.router_stats();
    assert_eq!(stats.epoch, 2);
    assert_eq!(stats.n_shards, 3);
    Arc::try_unwrap(router).unwrap().shutdown();
}

#[test]
fn budgeted_plan_serves_within_its_per_shard_budget() {
    // End to end: cut the model by a byte budget, serve through the
    // resulting fleet, and verify both the answers and the budget.
    let model = random_model(11);
    let sampler = SnapshotSampler::WaryTree;
    let full = InferenceSnapshot::from_model(&model, sampler);
    let budget = full.memory_bytes() / 4 + 1;
    let plan = ShardPlan::by_budget(VOCAB, K, sampler, budget).unwrap();
    assert!(plan.n_shards() >= 4, "plan = {plan:?}");
    for s in 0..plan.n_shards() {
        assert!(plan.shard_bytes(s, K, sampler) <= budget);
        assert!(full.shard(plan.range(s)).memory_bytes() <= budget);
    }
    let direct = TopicServer::from_model(&model, config(FoldInKind::Em)).unwrap();
    let routed = ShardRouter::from_model(&model, plan, config(FoldInKind::Em)).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for seed in 0..4u64 {
        let doc = random_doc(&mut rng, 15);
        let a = direct.infer_topics(doc.clone(), seed).unwrap();
        let b = routed.infer_topics(doc, seed).unwrap();
        assert!(linf(&a.theta, &b.theta) <= 1e-5);
        assert_eq!(a.dominant_topic(), b.dominant_topic());
    }
    direct.shutdown();
    routed.shutdown();
}

#[test]
fn raw_token_documents_route_identically() {
    // The raw-token path encodes against the FULL vocabulary before
    // splitting, so OOV accounting and θ match the direct server.
    let model = random_model(13);
    let vocab = saberlda::corpus::Vocabulary::synthetic(VOCAB);
    let direct = TopicServer::from_model(&model, config(FoldInKind::Em)).unwrap();
    let routed = ShardRouter::from_model(
        &model,
        ShardPlan::uniform(VOCAB, 3).unwrap(),
        config(FoldInKind::Em),
    )
    .unwrap();
    let tokens = ["w00000", "unknown-token", "w00030", "w00059", "w00007"];
    let a = direct
        .infer_raw(&tokens, &vocab, saberlda::corpus::OovPolicy::Skip, 8)
        .unwrap();
    let b = routed
        .infer_raw(&tokens, &vocab, saberlda::corpus::OovPolicy::Skip, 8)
        .unwrap();
    assert_eq!(a.n_oov, 1);
    assert_eq!(b.n_oov, 1);
    assert!(linf(&a.theta, &b.theta) <= 1e-5);
    direct.shutdown();
    routed.shutdown();
}
