//! End-to-end tests for distributed request tracing (ISSUE 7).
//!
//! Two contracts under test:
//!
//! * **Tracing is zero-cost on the answer.** The trace recorder only reads
//!   clocks and copies ids — it never touches a seed, a chain or a float
//!   path — so θ must be **bit-identical** with tracing on and off, and a
//!   traced HTTP response must be byte-identical to an untraced one.
//! * **One request, one tree.** A traced request through a
//!   `ShardRouter<HttpTransport>` whose shards are separate HTTP servers
//!   over real localhost TCP must leave ONE assembled trace in the
//!   router's ring — ingress → parse → fan-out → per-shard subtrees
//!   (stitched from the `/infer-partial` responses) → merge → encode —
//!   and each shard process must hold its own subtree in its own ring
//!   under the same trace id.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saberlda::serve::wire;
use saberlda::serve::{
    FoldInKind, FoldInParams, HttpConfig, HttpServer, HttpTransport, InferenceSnapshot,
    ServeConfig, ShardPlan, ShardRouter, TopicServer,
};
use saberlda::trace::{Trace, TraceBuilder, TraceId};
use saberlda::LdaModel;

const VOCAB: usize = 60;
const K: usize = 5;

/// A model with dense random counts — every word genuinely mixes topics,
/// so any tracing-induced perturbation would show up in θ's bits.
fn random_model(seed: u64) -> LdaModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = LdaModel::new(VOCAB, K, 0.08, 0.01).unwrap();
    for v in 0..VOCAB {
        for k in 0..K {
            model.word_topic_mut()[(v, k)] = rng.gen_range(0u32..20);
        }
        let hot = rng.gen_range(0usize..K);
        model.word_topic_mut()[(v, hot)] += 5;
    }
    model.refresh_probabilities();
    model
}

fn random_doc(rng: &mut StdRng, len: usize) -> Vec<u32> {
    (0..len)
        .map(|_| rng.gen_range(0u32..VOCAB as u32))
        .collect()
}

fn config(kind: FoldInKind) -> ServeConfig {
    ServeConfig {
        n_workers: 2,
        fold_in: FoldInParams {
            kind,
            ..FoldInParams::default()
        },
        ..ServeConfig::default()
    }
}

fn bits(theta: &[f32]) -> Vec<u32> {
    theta.iter().map(|x| x.to_bits()).collect()
}

/// One request over a real socket; returns the response body.
fn http_body(addr: std::net::SocketAddr, request: &str) -> String {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(request.as_bytes()).unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).unwrap();
    reply
        .split("\r\n\r\n")
        .nth(1)
        .expect("response has a body")
        .to_string()
}

fn trace_recent(addr: std::net::SocketAddr) -> Vec<Trace> {
    wire::decode_trace_recent(&http_body(
        addr,
        "GET /trace/recent HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    ))
    .unwrap()
}

/// A shard process stand-in: a `TopicServer` over a snapshot slice behind
/// its own HTTP listener — real TCP end to end.
struct ShardProcess {
    http: HttpServer,
}

fn spawn_shard_fleet(
    model: &LdaModel,
    plan: &ShardPlan,
    serve_config: ServeConfig,
) -> (Vec<ShardProcess>, Vec<HttpTransport>) {
    let snapshot = InferenceSnapshot::from_model(model, serve_config.sampler);
    let mut shards = Vec::new();
    let mut transports = Vec::new();
    for range in plan.ranges() {
        let server =
            Arc::new(TopicServer::start(snapshot.shard(range.clone()), serve_config).unwrap());
        let http = HttpServer::bind(
            "127.0.0.1:0",
            server,
            None,
            HttpConfig {
                shard_range: Some((range.start, range.end)),
                ..HttpConfig::default()
            },
        )
        .unwrap();
        transports.push(HttpTransport::connect(http.local_addr()).unwrap());
        shards.push(ShardProcess { http });
    }
    (shards, transports)
}

#[test]
fn tracing_never_changes_theta_bit_for_bit() {
    // The differential zero-cost criterion, at the API layer: the same
    // document and seed through `infer_topics` (untraced) and
    // `infer_with_trace` must produce bit-identical θ — under both
    // fold-in kinds, across a 2-shard fan-out.
    for kind in [FoldInKind::Esca, FoldInKind::Em] {
        let model = random_model(3);
        let cfg = config(kind);
        let router =
            ShardRouter::from_model(&model, ShardPlan::uniform(VOCAB, 2).unwrap(), cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for seed in 0..5u64 {
            let doc = random_doc(&mut rng, 6 + seed as usize * 3);
            let plain = router.infer_topics(doc.clone(), seed).unwrap();
            let mut trace = TraceBuilder::new(TraceId::mint());
            let root = trace.begin(None, "ingress");
            let traced = router
                .infer_with_trace(doc, seed, Duration::from_secs(5), &mut trace, root)
                .unwrap();
            trace.end(root);
            let done = trace.finish();
            assert!(
                done.spans.len() >= 4,
                "{kind:?} seed {seed}: traced run recorded too few spans: {:?}",
                done.spans
            );
            assert_eq!(
                bits(&plain.theta),
                bits(&traced.theta),
                "{kind:?} seed {seed}: tracing perturbed θ"
            );
            assert_eq!(plain.snapshot_version, traced.snapshot_version);
            assert_eq!(plain.n_oov, traced.n_oov);
        }
        router.shutdown();
    }
}

#[test]
fn traced_and_untraced_http_responses_are_byte_identical() {
    // The same criterion at the wire: joining a distributed trace via
    // X-Saber-Trace must not change a single response byte — tracing is
    // invisible to the client that opted in, and the trace itself is
    // retrievable from the ring afterwards.
    let model = random_model(5);
    let server = Arc::new(TopicServer::from_model(&model, config(FoldInKind::Esca)).unwrap());
    let http = HttpServer::bind("127.0.0.1:0", server, None, HttpConfig::default()).unwrap();
    let body = r#"{"words":[0,15,31,45,59,2],"seed":9}"#;
    let untraced = http_body(
        http.local_addr(),
        &format!(
            "POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    let traced = http_body(
        http.local_addr(),
        &format!(
            "POST /infer HTTP/1.1\r\nHost: x\r\nX-Saber-Trace: 00000000000000ab\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    assert_eq!(untraced, traced, "tracing changed the response bytes");
    let recent = trace_recent(http.local_addr());
    assert!(
        recent.iter().any(|t| t.trace_id.raw() == 0xab),
        "the joined trace id never reached the ring: {recent:?}"
    );
    // The untraced request was traced too — under a minted id.
    assert!(
        recent.len() >= 2,
        "every /infer request should leave a trace: {recent:?}"
    );
    http.shutdown();
}

#[test]
fn a_two_shard_tcp_request_assembles_one_cross_process_trace() {
    // The headline acceptance criterion: one traced request through two
    // real shard processes leaves ONE tree (≥ 6 spans) in the router's
    // ring, with both shards' `infer-partial` subtrees stitched in, and
    // each shard process holds its own subtree under the same trace id.
    let model = random_model(7);
    let cfg = config(FoldInKind::Esca);
    let plan = ShardPlan::uniform(VOCAB, 2).unwrap();
    let (shards, transports) = spawn_shard_fleet(&model, &plan, cfg);
    let router = Arc::new(ShardRouter::with_transports(plan, transports, cfg).unwrap());
    let front = HttpServer::bind("127.0.0.1:0", router, None, HttpConfig::default()).unwrap();

    let body = r#"{"words":[0,15,31,45,59,2],"seed":9}"#;
    let response = http_body(
        front.local_addr(),
        &format!(
            "POST /infer HTTP/1.1\r\nHost: x\r\nX-Saber-Trace: 00000000000000ab\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    assert!(response.contains(r#""theta""#), "{response}");

    let recent = trace_recent(front.local_addr());
    let trace = recent
        .iter()
        .find(|t| t.trace_id.raw() == 0xab)
        .expect("the traced request must be in the router's ring");

    assert!(
        trace.spans.len() >= 6,
        "expected >= 6 spans in the assembled tree, got {}: {:?}",
        trace.spans.len(),
        trace.spans
    );
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for needed in [
        "ingress", "parse", "fan-out", "shard 0", "shard 1", "merge", "encode",
    ] {
        assert!(
            names.contains(&needed),
            "assembled tree is missing a {needed:?} span: {names:?}"
        );
    }

    // Exactly one root, and every parent id resolves: a single connected
    // tree, not a forest of half-stitched fragments.
    assert_eq!(
        trace.spans.iter().filter(|s| s.parent.is_none()).count(),
        1,
        "the assembled trace must have exactly one root: {:?}",
        trace.spans
    );
    let ids: std::collections::HashSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    assert!(
        trace
            .spans
            .iter()
            .all(|s| s.parent.is_none_or(|p| ids.contains(&p))),
        "dangling parent reference in the assembled trace: {:?}",
        trace.spans
    );

    // Both shard processes contributed a child subtree: each router-side
    // `shard N` span has the shard's own `infer-partial` span under it.
    for s in 0..2usize {
        let shard_span = trace
            .spans
            .iter()
            .find(|sp| sp.name == format!("shard {s}"))
            .unwrap();
        assert!(
            trace
                .spans
                .iter()
                .any(|sp| sp.parent == Some(shard_span.id) && sp.name == "infer-partial"),
            "shard {s} subtree is missing its remote infer-partial span: {:?}",
            trace.spans
        );
    }

    // The epoch observation rides as an event on the fan-out parent.
    assert!(
        trace
            .spans
            .iter()
            .flat_map(|s| s.events.iter())
            .any(|e| e.message.contains("epoch observed")),
        "missing the epoch-observed event: {:?}",
        trace.spans
    );

    // "Ring buffer per process": each shard recorded its local subtree
    // into its OWN ring under the same distributed trace id.
    for (s, shard) in shards.iter().enumerate() {
        let shard_recent = trace_recent(shard.http.local_addr());
        assert!(
            shard_recent.iter().any(|t| t.trace_id.raw() == 0xab),
            "shard {s}'s ring is missing the distributed trace: {shard_recent:?}"
        );
    }

    front.shutdown();
    for shard in shards {
        shard.http.shutdown();
    }
}

#[test]
fn em_fan_out_traces_carry_per_round_spans() {
    // Under EM fold-in every synchronisation round is its own span, so a
    // slow round is attributable; the per-shard subtrees hang off the
    // round, not the request root.
    let model = random_model(11);
    let cfg = config(FoldInKind::Em);
    let plan = ShardPlan::uniform(VOCAB, 2).unwrap();
    let (shards, transports) = spawn_shard_fleet(&model, &plan, cfg);
    let router = Arc::new(ShardRouter::with_transports(plan, transports, cfg).unwrap());
    let front = HttpServer::bind("127.0.0.1:0", router, None, HttpConfig::default()).unwrap();
    let body = r#"{"words":[0,15,31,45,59,2],"seed":4}"#;
    http_body(
        front.local_addr(),
        &format!(
            "POST /infer HTTP/1.1\r\nHost: x\r\nX-Saber-Trace: 00000000000000cd\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    let recent = trace_recent(front.local_addr());
    let trace = recent
        .iter()
        .find(|t| t.trace_id.raw() == 0xcd)
        .expect("the traced EM request must be in the router's ring");
    assert!(
        trace.spans.iter().any(|s| s.name.starts_with("em-round")),
        "EM trace has no per-round spans: {:?}",
        trace.spans
    );
    front.shutdown();
    for shard in shards {
        shard.http.shutdown();
    }
}
