//! Golden wire-format tests: the exact bytes of the JSON protocol.
//!
//! The serving wire formats ride on `saber_core::json`, whose serialiser
//! is deterministic (ordered members, shortest-round-trip floats, exact
//! `u64`). These tests commit fixture strings for the client-visible
//! bodies and assert **byte-for-byte** stability, so a codec or encoder
//! refactor that silently changes the protocol — member order, float
//! formatting, integer width — fails here instead of breaking clients.
//!
//! If one of these assertions fails, the change is a wire-protocol break:
//! either revert it or treat it as one (bump the protocol, update
//! `docs/SERVING.md`, and only then update the fixture).

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use saberlda::serve::stats::LatencyHistogram;
use saberlda::serve::wire;
use saberlda::serve::{
    HttpConfig, HttpServer, HttpStats, InferResponse, ServeConfig, ServeStats, ShardPlan,
    ShardRouter, TopicServer,
};
use saberlda::{LdaModel, Vocabulary};

#[test]
fn infer_response_bytes_are_stable() {
    let response = InferResponse {
        theta: vec![0.75, 0.25],
        snapshot_version: 3,
        n_oov: 1,
    };
    assert_eq!(
        wire::encode_infer_response(&response, 42).to_string(),
        r#"{"theta":[0.75,0.25],"dominant_topic":0,"snapshot_version":3,"n_oov":1,"seed":42}"#,
    );
    // Seeds above 2^53 must survive exactly (u64-exact JSON integers).
    let max_seed = wire::encode_infer_response(&response, u64::MAX).to_string();
    assert!(
        max_seed.ends_with(r#""seed":18446744073709551615}"#),
        "{max_seed}"
    );
}

#[test]
fn error_body_bytes_are_stable() {
    assert_eq!(
        wire::encode_error(429, "queue full").to_string(),
        r#"{"error":"queue full","status":429}"#,
    );
}

#[test]
fn top_words_bytes_are_stable() {
    let vocab = Vocabulary::synthetic(4);
    assert_eq!(
        wire::encode_top_words(1, &[(0, 0.5), (3, 0.25)], Some(&vocab)).to_string(),
        r#"{"topic":1,"words":[{"word":0,"prob":0.5,"token":"w00000"},{"word":3,"prob":0.25,"token":"w00003"}]}"#,
    );
}

#[test]
fn similar_bytes_are_stable() {
    let a = InferResponse {
        theta: vec![0.5, 0.5],
        snapshot_version: 3,
        n_oov: 0,
    };
    let b = InferResponse {
        theta: vec![0.25, 0.75],
        snapshot_version: 3,
        n_oov: 0,
    };
    assert_eq!(
        wire::encode_similar(&a, &b, 0.25, 0.875, 7).to_string(),
        r#"{"hellinger":0.25,"cosine":0.875,"dominant_topic_a":1,"dominant_topic_b":1,"snapshot_version":3,"seed":7}"#,
    );
}

#[test]
fn stats_body_bytes_are_stable() {
    // Histograms built from fixed durations are fully deterministic:
    // fixed bucket counts, sums and therefore quantile midpoints.
    let latency = LatencyHistogram::new();
    latency.record(Duration::from_micros(800));
    latency.record(Duration::from_micros(1500));
    latency.record(Duration::from_millis(90));
    let serve = ServeStats {
        requests: 3,
        tokens: 42,
        batches: 2,
        swaps_observed: 1,
        latency: latency.snapshot(),
    };
    let endpoint = LatencyHistogram::new();
    endpoint.record(Duration::from_micros(900));
    endpoint.record(Duration::from_micros(1100));
    let empty = || LatencyHistogram::new().snapshot();
    let http = HttpStats {
        requests: 5,
        errors: 1,
        active_connections: 2,
        infer: endpoint.snapshot(),
        top_words: empty(),
        similar: empty(),
        stats: empty(),
        healthz: empty(),
    };
    assert_eq!(
        wire::encode_stats_body(&serve, 4, 3, &http).to_string(),
        concat!(
            r#"{"server":{"requests":3,"tokens":42,"batches":2,"swaps_observed":1,"#,
            r#""mean_batch_size":1.5,"snapshot_version":4,"shards":3,"#,
            r#""latency":{"count":3,"mean_us":30766.666666666668,"p50_us":1448.1546878700494,"#,
            r#""p95_us":92681.90002368316,"p99_us":92681.90002368316}},"#,
            r#""http":{"requests":5,"errors":1,"active_connections":2,"endpoints":{"#,
            r#""infer":{"count":2,"mean_us":1000,"p50_us":724.0773439350247,"#,
            r#""p95_us":1448.1546878700494,"p99_us":1448.1546878700494},"#,
            r#""top_words":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null},"#,
            r#""similar":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null},"#,
            r#""stats":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null},"#,
            r#""healthz":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null}}}}"#,
        ),
    );
}

/// The deterministic planted model behind the full-stack fixtures.
fn model() -> LdaModel {
    let mut model = LdaModel::new(12, 3, 0.05, 0.01).unwrap();
    for v in 0..12 {
        model.word_topic_mut()[(v, v % 3)] = 50;
    }
    model.refresh_probabilities();
    model
}

/// One request over a real socket; returns the response body.
fn http_body(addr: std::net::SocketAddr, request: &str) -> String {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(request.as_bytes()).unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).unwrap();
    reply
        .split("\r\n\r\n")
        .nth(1)
        .expect("response has a body")
        .to_string()
}

const INFER_REQUEST_BODY: &str = r#"{"words":[0,3,6,9,0,3],"seed":7}"#;
const INFER_EXPECTED: &str = concat!(
    r#"{"theta":[0.9837398529052734,0.008130080997943878,0.008130080997943878],"#,
    r#""dominant_topic":0,"snapshot_version":1,"n_oov":0,"seed":7}"#,
);

#[test]
fn http_bodies_are_stable_end_to_end_for_a_direct_server() {
    let server = Arc::new(TopicServer::from_model(&model(), ServeConfig::default()).unwrap());
    let http = HttpServer::bind("127.0.0.1:0", server, None, HttpConfig::default()).unwrap();
    assert_eq!(
        http_body(
            http.local_addr(),
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        ),
        r#"{"status":"ok","snapshot_version":1,"n_topics":3,"vocab_size":12,"shards":1}"#,
    );
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        INFER_REQUEST_BODY.len(),
        INFER_REQUEST_BODY
    );
    assert_eq!(http_body(http.local_addr(), &request), INFER_EXPECTED);
    http.shutdown();
}

#[test]
fn http_bodies_are_stable_end_to_end_for_a_sharded_router() {
    // Same endpoints through a 3-shard router: only the `shards` member
    // may differ — and on this fully pinned model even θ's bytes match
    // the direct server's.
    let router = Arc::new(
        ShardRouter::from_model(
            &model(),
            ShardPlan::uniform(12, 3).unwrap(),
            ServeConfig::default(),
        )
        .unwrap(),
    );
    let http = HttpServer::bind("127.0.0.1:0", router, None, HttpConfig::default()).unwrap();
    assert_eq!(
        http_body(
            http.local_addr(),
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        ),
        r#"{"status":"ok","snapshot_version":1,"n_topics":3,"vocab_size":12,"shards":3}"#,
    );
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        INFER_REQUEST_BODY.len(),
        INFER_REQUEST_BODY
    );
    assert_eq!(http_body(http.local_addr(), &request), INFER_EXPECTED);
    http.shutdown();
}

#[test]
fn json_codec_primitives_are_stable() {
    use saberlda::core::json::{parse, JsonValue};
    // The formatting rules everything above relies on, pinned directly.
    for (value, expected) in [
        (JsonValue::from(u64::MAX), "18446744073709551615"),
        (JsonValue::Number(1.5), "1.5"),
        (JsonValue::Number(1.0), "1"),
        (JsonValue::Number(f64::NAN), "null"),
        (JsonValue::Number(0.1), "0.1"),
        (JsonValue::from("a\"b\\c\nd"), r#""a\"b\\c\nd""#),
        (JsonValue::f32_array(&[0.1f32]), "[0.10000000149011612]"),
    ] {
        assert_eq!(value.to_string(), expected);
    }
    // Round trip: parse(serialise(x)) == x for a nested document.
    let doc = r#"{"a":[1,2.5,null,true,"x"],"b":{"c":18446744073709551615}}"#;
    assert_eq!(parse(doc).unwrap().to_string(), doc);
}
