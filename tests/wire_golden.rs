//! Golden wire-format tests: the exact bytes of the JSON protocol.
//!
//! The serving wire formats ride on `saber_core::json`, whose serialiser
//! is deterministic (ordered members, shortest-round-trip floats, exact
//! `u64`). These tests commit fixture strings for the client-visible
//! bodies and assert **byte-for-byte** stability, so a codec or encoder
//! refactor that silently changes the protocol — member order, float
//! formatting, integer width — fails here instead of breaking clients.
//!
//! If one of these assertions fails, the change is a wire-protocol break:
//! either revert it or treat it as one (bump the protocol, update
//! `docs/SERVING.md`, and only then update the fixture).

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use saberlda::serve::stats::LatencyHistogram;
use saberlda::serve::wire;
use saberlda::serve::{
    EndpointStats, FoldInParams, HttpConfig, HttpServer, HttpStats, InferResponse, PartialRequest,
    PartialResponse, PipelineStats, RouterStats, ServeConfig, ServeStats, ShardInfo, ShardPlan,
    ShardRouter, TopicServer,
};
use saberlda::trace::{SpanEvent, SpanRecord, Trace, TraceId};
use saberlda::{LdaModel, Vocabulary};

#[test]
fn infer_response_bytes_are_stable() {
    let response = InferResponse {
        theta: vec![0.75, 0.25],
        snapshot_version: 3,
        n_oov: 1,
    };
    assert_eq!(
        wire::encode_infer_response(&response, 42).to_string(),
        r#"{"theta":[0.75,0.25],"dominant_topic":0,"snapshot_version":3,"n_oov":1,"seed":42}"#,
    );
    // Seeds above 2^53 must survive exactly (u64-exact JSON integers).
    let max_seed = wire::encode_infer_response(&response, u64::MAX).to_string();
    assert!(
        max_seed.ends_with(r#""seed":18446744073709551615}"#),
        "{max_seed}"
    );
}

#[test]
fn error_body_bytes_are_stable() {
    assert_eq!(
        wire::encode_error(429, "queue full").to_string(),
        r#"{"error":"queue full","status":429}"#,
    );
}

#[test]
fn top_words_bytes_are_stable() {
    let vocab = Vocabulary::synthetic(4);
    assert_eq!(
        wire::encode_top_words(1, &[(0, 0.5), (3, 0.25)], Some(&vocab)).to_string(),
        r#"{"topic":1,"words":[{"word":0,"prob":0.5,"token":"w00000"},{"word":3,"prob":0.25,"token":"w00003"}]}"#,
    );
}

#[test]
fn similar_bytes_are_stable() {
    let a = InferResponse {
        theta: vec![0.5, 0.5],
        snapshot_version: 3,
        n_oov: 0,
    };
    let b = InferResponse {
        theta: vec![0.25, 0.75],
        snapshot_version: 3,
        n_oov: 0,
    };
    assert_eq!(
        wire::encode_similar(&a, &b, 0.25, 0.875, 7).to_string(),
        r#"{"hellinger":0.25,"cosine":0.875,"dominant_topic_a":1,"dominant_topic_b":1,"snapshot_version":3,"seed":7}"#,
    );
}

/// The `/stats` bytes of an endpoint no request has hit yet: all three
/// sub-histograms (total, queue-wait, handler) empty.
const EMPTY_ENDPOINT: &str = concat!(
    r#"{"total":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null},"#,
    r#""queue_wait":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null},"#,
    r#""handler":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null}}"#,
);

#[test]
fn stats_body_bytes_are_stable() {
    // Histograms built from fixed durations are fully deterministic:
    // fixed bucket counts, sums and therefore quantile midpoints.
    let latency = LatencyHistogram::new();
    latency.record(Duration::from_micros(800));
    latency.record(Duration::from_micros(1500));
    latency.record(Duration::from_millis(90));
    let serve = ServeStats {
        requests: 3,
        tokens: 42,
        batches: 2,
        swaps_observed: 1,
        latency: latency.snapshot(),
        queue_wait: LatencyHistogram::new().snapshot(),
        handler: LatencyHistogram::new().snapshot(),
    };
    let endpoint = LatencyHistogram::new();
    endpoint.record(Duration::from_micros(900));
    endpoint.record(Duration::from_micros(1100));
    let http = HttpStats {
        requests: 5,
        errors: 1,
        active_connections: 2,
        infer: EndpointStats {
            total: endpoint.snapshot(),
            queue_wait: LatencyHistogram::new().snapshot(),
            handler: LatencyHistogram::new().snapshot(),
        },
        top_words: EndpointStats::default(),
        similar: EndpointStats::default(),
        stats: EndpointStats::default(),
        healthz: EndpointStats::default(),
    };
    assert_eq!(
        wire::encode_stats_body(&serve, 4, 3, &http, None).to_string(),
        [
            r#"{"server":{"requests":3,"tokens":42,"batches":2,"swaps_observed":1,"#,
            r#""mean_batch_size":1.5,"snapshot_version":4,"shards":3,"#,
            r#""latency":{"count":3,"mean_us":30766.666666666668,"p50_us":1448.1546878700494,"#,
            r#""p95_us":92681.90002368316,"p99_us":92681.90002368316},"#,
            r#""queue_wait":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null},"#,
            r#""handler":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null}},"#,
            r#""http":{"requests":5,"errors":1,"active_connections":2,"endpoints":{"#,
            r#""infer":{"total":{"count":2,"mean_us":1000,"p50_us":724.0773439350247,"#,
            r#""p95_us":1448.1546878700494,"p99_us":1448.1546878700494},"#,
            r#""queue_wait":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null},"#,
            r#""handler":{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null}},"#,
            r#""top_words":"#,
            EMPTY_ENDPOINT,
            r#","#,
            r#""similar":"#,
            EMPTY_ENDPOINT,
            r#","#,
            r#""stats":"#,
            EMPTY_ENDPOINT,
            r#","#,
            r#""healthz":"#,
            EMPTY_ENDPOINT,
            r#"}}}"#,
        ]
        .concat(),
    );
}

#[test]
fn partial_request_bytes_are_stable() {
    // The shard fan-out protocol (ISSUE 5): both request kinds, pinned.
    assert_eq!(
        wire::encode_partial_request(&[0, 3], &PartialRequest::FoldIn { seed: 7 }).to_string(),
        r#"{"words":[0,3],"esca":{"seed":7}}"#,
    );
    let em = PartialRequest::EmRound {
        round: 1,
        theta: std::sync::Arc::new(vec![0.5, 1.0 / 3.0, 0.1]),
    };
    assert_eq!(
        wire::encode_partial_request(&[2], &em).to_string(),
        r#"{"words":[2],"em":{"round":1,"theta":[0.5,0.3333333333333333,0.1]}}"#,
    );
    // Decode is the exact inverse — bit-for-bit on θ, which is what keeps
    // remote EM merges algebraically exact.
    let (words, decoded) = wire::decode_partial_request(
        r#"{"words":[2],"em":{"round":1,"theta":[0.5,0.3333333333333333,0.1]}}"#,
    )
    .unwrap();
    assert_eq!(words, vec![2]);
    match decoded {
        PartialRequest::EmRound { round, theta } => {
            assert_eq!(round, 1);
            let expect = [0.5f64, 1.0 / 3.0, 0.1];
            assert_eq!(
                theta.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            );
        }
        other => panic!("decoded the wrong request kind: {other:?}"),
    }
}

#[test]
fn partial_response_bytes_are_stable() {
    let response = PartialResponse {
        partial: saberlda::core::infer::PartialFoldIn {
            counts: vec![4.5, 1.5, 0.0],
            n_words: 6,
        },
        snapshot_version: 3,
        n_oov: 1,
        spans: Vec::new(),
    };
    // An untraced response carries no `spans` member: these are the exact
    // PR 5 bytes, so tracing is invisible to clients that never opt in.
    let encoded = wire::encode_partial_response(&response, (12, 24)).to_string();
    assert_eq!(
        encoded,
        r#"{"counts":[4.5,1.5,0],"n_words":6,"snapshot_version":3,"n_oov":1,"shard":[12,24]}"#,
    );
    let decoded = wire::decode_partial_response(&encoded).unwrap();
    assert_eq!(decoded, response);
}

#[test]
fn traced_partial_response_bytes_are_stable() {
    // When the router forwards an `X-Saber-Trace` header, the shard's
    // spans ride home inline in the `/infer-partial` response. `parent`
    // is null on the subtree root; `events` is omitted when empty.
    let response = PartialResponse {
        partial: saberlda::core::infer::PartialFoldIn {
            counts: vec![4.5, 1.5, 0.0],
            n_words: 6,
        },
        snapshot_version: 3,
        n_oov: 1,
        spans: vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "infer-partial".to_string(),
                start_us: 0,
                duration_us: 180,
                events: vec![SpanEvent {
                    at_us: 90,
                    message: "queued".to_string(),
                }],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "handler".to_string(),
                start_us: 40,
                duration_us: 120,
                events: Vec::new(),
            },
        ],
    };
    let encoded = wire::encode_partial_response(&response, (12, 24)).to_string();
    assert_eq!(
        encoded,
        concat!(
            r#"{"counts":[4.5,1.5,0],"n_words":6,"snapshot_version":3,"n_oov":1,"shard":[12,24],"#,
            r#""spans":[{"id":1,"parent":null,"name":"infer-partial","start_us":0,"#,
            r#""duration_us":180,"events":[{"at_us":90,"message":"queued"}]},"#,
            r#"{"id":2,"parent":1,"name":"handler","start_us":40,"duration_us":120}]}"#,
        ),
    );
    // Spans survive the wire exactly, so the router can attach the shard
    // subtree without loss.
    let decoded = wire::decode_partial_response(&encoded).unwrap();
    assert_eq!(decoded, response);
}

#[test]
fn shard_info_bytes_are_stable() {
    let latency = LatencyHistogram::new();
    latency.record(Duration::from_micros(800));
    latency.record(Duration::from_micros(900));
    latency.record(Duration::from_millis(90));
    let info = ShardInfo {
        epoch: 2,
        vocab_size: 12,
        n_topics: 3,
        alpha: 0.05,
        shard_range: (0, 12),
        fold_in: FoldInParams::default(),
        stats: ServeStats {
            requests: 3,
            tokens: 9,
            batches: 2,
            swaps_observed: 1,
            latency: latency.snapshot(),
            queue_wait: LatencyHistogram::new().snapshot(),
            handler: LatencyHistogram::new().snapshot(),
        },
    };
    let encoded = wire::encode_shard_info(&info).to_string();
    assert_eq!(
        encoded,
        concat!(
            r#"{"epoch":2,"vocab_size":12,"n_topics":3,"alpha":0.05000000074505806,"#,
            r#""shard":[0,12],"fold_in":{"kind":"esca","burn_in":5,"samples":8},"#,
            r#""stats":{"requests":3,"tokens":9,"batches":2,"swaps_observed":1,"#,
            r#""latency":{"sum_us":91700,"buckets":[[9,2],[16,1]]},"#,
            r#""queue_wait":{"sum_us":0,"buckets":[]},"handler":{"sum_us":0,"buckets":[]}}}"#,
        ),
    );
    // The histogram survives the wire losslessly: same buckets, same sum,
    // same quantiles.
    let decoded = wire::decode_shard_info(&encoded).unwrap();
    assert_eq!(decoded, info);
    assert_eq!(decoded.stats.latency.p99(), info.stats.latency.p99());
}

#[test]
fn prometheus_bytes_are_stable() {
    let latency = LatencyHistogram::new();
    latency.record(Duration::from_micros(800));
    latency.record(Duration::from_millis(90));
    let serve = ServeStats {
        requests: 2,
        tokens: 10,
        batches: 1,
        swaps_observed: 0,
        latency: latency.snapshot(),
        queue_wait: LatencyHistogram::new().snapshot(),
        handler: LatencyHistogram::new().snapshot(),
    };
    let infer = LatencyHistogram::new();
    infer.record(Duration::from_micros(900));
    let http = HttpStats {
        requests: 5,
        errors: 1,
        active_connections: 2,
        infer: EndpointStats {
            total: infer.snapshot(),
            queue_wait: LatencyHistogram::new().snapshot(),
            handler: LatencyHistogram::new().snapshot(),
        },
        top_words: EndpointStats::default(),
        similar: EndpointStats::default(),
        stats: EndpointStats::default(),
        healthz: EndpointStats::default(),
    };
    let router = RouterStats {
        requests: 4,
        skew_retries: 1,
        epoch: 2,
        n_shards: 2,
        shard_requests: vec![3, 1],
        transport_retries: 2,
        hedges: 5,
        breaker_trips: 1,
        breaker_readmits: 1,
        replica_health: vec![vec![true, false], vec![true]],
        pipeline: None,
    };
    let text = wire::encode_prometheus(&serve, 2, 2, &http, Some(&router));
    // Spot-pin the counters and the serve histogram; the endpoint
    // histograms follow the same shape.
    let expected_prefix = "\
# TYPE saber_http_requests_total counter\n\
saber_http_requests_total 5\n\
# TYPE saber_http_errors_total counter\n\
saber_http_errors_total 1\n\
# TYPE saber_serve_requests_total counter\n\
saber_serve_requests_total 2\n\
# TYPE saber_serve_tokens_total counter\n\
saber_serve_tokens_total 10\n\
# TYPE saber_serve_batches_total counter\n\
saber_serve_batches_total 1\n\
# TYPE saber_serve_swaps_observed_total counter\n\
saber_serve_swaps_observed_total 0\n\
# TYPE saber_serve_latency_overflow_total counter\n\
saber_serve_latency_overflow_total 0\n\
# TYPE saber_serve_queue_wait_overflow_total counter\n\
saber_serve_queue_wait_overflow_total 0\n\
# TYPE saber_serve_handler_overflow_total counter\n\
saber_serve_handler_overflow_total 0\n\
# TYPE saber_http_active_connections gauge\n\
saber_http_active_connections 2\n\
# TYPE saber_snapshot_epoch gauge\n\
saber_snapshot_epoch 2\n\
# TYPE saber_shards gauge\n\
saber_shards 2\n\
# TYPE saber_router_requests_total counter\n\
saber_router_requests_total 4\n\
# TYPE saber_router_skew_retries_total counter\n\
saber_router_skew_retries_total 1\n\
# TYPE saber_router_transport_retries_total counter\n\
saber_router_transport_retries_total 2\n\
# TYPE saber_router_hedges_total counter\n\
saber_router_hedges_total 5\n\
# TYPE saber_router_breaker_trips_total counter\n\
saber_router_breaker_trips_total 1\n\
# TYPE saber_router_breaker_readmits_total counter\n\
saber_router_breaker_readmits_total 1\n\
# TYPE saber_router_shard_requests_total counter\n\
saber_router_shard_requests_total{shard=\"0\"} 3\n\
saber_router_shard_requests_total{shard=\"1\"} 1\n\
# TYPE saber_router_replica_admitted gauge\n\
saber_router_replica_admitted{shard=\"0\",replica=\"0\"} 1\n\
saber_router_replica_admitted{shard=\"0\",replica=\"1\"} 0\n\
saber_router_replica_admitted{shard=\"1\",replica=\"0\"} 1\n\
# TYPE saber_serve_latency_seconds histogram\n\
saber_serve_latency_seconds_bucket{le=\"0.0001\"} 0\n\
saber_serve_latency_seconds_bucket{le=\"0.001\"} 0\n\
saber_serve_latency_seconds_bucket{le=\"0.01\"} 1\n\
saber_serve_latency_seconds_bucket{le=\"0.1\"} 1\n\
saber_serve_latency_seconds_bucket{le=\"1\"} 2\n\
saber_serve_latency_seconds_bucket{le=\"10\"} 2\n\
saber_serve_latency_seconds_bucket{le=\"+Inf\"} 2\n\
saber_serve_latency_seconds_sum 0.0908\n\
saber_serve_latency_seconds_count 2\n\
# TYPE saber_serve_queue_wait_seconds histogram\n\
saber_serve_queue_wait_seconds_bucket{le=\"0.0001\"} 0\n\
saber_serve_queue_wait_seconds_bucket{le=\"0.001\"} 0\n\
saber_serve_queue_wait_seconds_bucket{le=\"0.01\"} 0\n\
saber_serve_queue_wait_seconds_bucket{le=\"0.1\"} 0\n\
saber_serve_queue_wait_seconds_bucket{le=\"1\"} 0\n\
saber_serve_queue_wait_seconds_bucket{le=\"10\"} 0\n\
saber_serve_queue_wait_seconds_bucket{le=\"+Inf\"} 0\n\
saber_serve_queue_wait_seconds_sum 0\n\
saber_serve_queue_wait_seconds_count 0\n\
# TYPE saber_serve_handler_seconds histogram\n\
saber_serve_handler_seconds_bucket{le=\"0.0001\"} 0\n\
saber_serve_handler_seconds_bucket{le=\"0.001\"} 0\n\
saber_serve_handler_seconds_bucket{le=\"0.01\"} 0\n\
saber_serve_handler_seconds_bucket{le=\"0.1\"} 0\n\
saber_serve_handler_seconds_bucket{le=\"1\"} 0\n\
saber_serve_handler_seconds_bucket{le=\"10\"} 0\n\
saber_serve_handler_seconds_bucket{le=\"+Inf\"} 0\n\
saber_serve_handler_seconds_sum 0\n\
saber_serve_handler_seconds_count 0\n";
    assert!(
        text.starts_with(expected_prefix),
        "prometheus exposition diverged:\n{text}"
    );
    // The 900 µs sample's log₂ bucket spans [512 µs, 1024 µs); its upper
    // edge exceeds the 1 ms bound, so it folds conservatively upward.
    assert!(text.contains(
        "saber_http_request_duration_seconds_bucket{endpoint=\"infer\",le=\"0.001\"} 0\n"
    ));
    assert!(text.contains(
        "saber_http_request_duration_seconds_bucket{endpoint=\"infer\",le=\"0.01\"} 1\n"
    ));
    assert!(text.contains("saber_http_request_duration_seconds_count{endpoint=\"healthz\"} 0\n"));
    // Every line is a comment or `name{labels} value` — no stray output.
    for line in text.lines() {
        assert!(
            line.starts_with("# TYPE ") || line.contains(' '),
            "malformed exposition line: {line}"
        );
    }
    // Exactly one TYPE line per metric name: spec-conforming Prometheus
    // parsers reject a repeated declaration, so the five endpoint series
    // must share one.
    assert_eq!(
        text.matches("# TYPE saber_http_request_duration_seconds histogram")
            .count(),
        1
    );
    assert_eq!(
        text.matches("# TYPE saber_serve_latency_seconds histogram")
            .count(),
        1
    );
    for family in [
        "saber_serve_queue_wait_seconds",
        "saber_serve_handler_seconds",
        "saber_http_queue_wait_seconds",
        "saber_http_handler_seconds",
    ] {
        assert_eq!(
            text.matches(&format!("# TYPE {family} histogram")).count(),
            1,
            "{family} must declare its TYPE exactly once"
        );
        assert!(
            text.contains(&format!("{family}_count{{endpoint=\"infer\"}} 0\n"))
                || text.contains(&format!("{family}_count 0\n")),
            "{family} series missing:\n{text}"
        );
    }
}

#[test]
fn stats_body_with_router_member_is_stable() {
    // Satellite bugfix of ISSUE 5: router-backed /stats now carries the
    // RouterStats block between "server" and "http".
    let serve = ServeStats::default();
    let http = HttpStats {
        requests: 1,
        errors: 0,
        active_connections: 1,
        infer: EndpointStats::default(),
        top_words: EndpointStats::default(),
        similar: EndpointStats::default(),
        stats: EndpointStats::default(),
        healthz: EndpointStats::default(),
    };
    let router = RouterStats {
        requests: 6,
        skew_retries: 1,
        epoch: 2,
        n_shards: 3,
        shard_requests: vec![6, 5, 4],
        transport_retries: 2,
        hedges: 0,
        breaker_trips: 1,
        breaker_readmits: 1,
        replica_health: vec![vec![true], vec![false], vec![true]],
        pipeline: None,
    };
    let body = wire::encode_stats_body(&serve, 2, 3, &http, Some(&router)).to_string();
    assert!(
        body.contains(
            r#""router":{"requests":6,"skew_retries":1,"epoch":2,"shards":3,"shard_requests":[6,5,4],"transport_retries":2,"hedges":0,"breaker_trips":1,"breaker_readmits":1,"replica_health":[[true],[false],[true]]}"#
        ),
        "stats body missing the router block: {body}"
    );
    // Direct servers (router = None) keep the PR 4 bytes exactly — pinned
    // by `stats_body_bytes_are_stable` above.
    assert!(!wire::encode_stats_body(&serve, 2, 1, &http, None)
        .to_string()
        .contains("router"));
}

#[test]
fn pipeline_stats_bytes_are_stable() {
    // PR 10: once a router has published at least one epoch, its stats
    // carry a `pipeline` block; fleets that never published keep the old
    // bytes exactly (pinned by the two tests above).
    let serve = ServeStats::default();
    let http = HttpStats {
        requests: 1,
        errors: 0,
        active_connections: 1,
        infer: EndpointStats::default(),
        top_words: EndpointStats::default(),
        similar: EndpointStats::default(),
        stats: EndpointStats::default(),
        healthz: EndpointStats::default(),
    };
    let router = RouterStats {
        requests: 0,
        skew_retries: 0,
        epoch: 4,
        n_shards: 2,
        shard_requests: vec![0, 0],
        transport_retries: 0,
        hedges: 0,
        breaker_trips: 0,
        breaker_readmits: 0,
        replica_health: vec![vec![true], vec![true]],
        pipeline: Some(PipelineStats {
            epochs_published: 3,
            delta_epochs: 2,
            rows_shipped: 40,
            rows_total: 96,
            fallbacks: 1,
            last_publish_micros: 1500,
            publish_micros_total: 5200,
        }),
    };
    let body = wire::encode_stats_body(&serve, 4, 2, &http, Some(&router)).to_string();
    assert!(
        body.contains(concat!(
            r#""pipeline":{"epochs_published":3,"delta_epochs":2,"#,
            r#""rows_shipped":40,"rows_total":96,"fallbacks":1,"#,
            r#""last_publish_micros":1500,"publish_micros_total":5200}"#
        )),
        "stats body missing the pipeline block: {body}"
    );
    let text = wire::encode_prometheus(&serve, 4, 2, &http, Some(&router));
    let expected_block = "\
# TYPE saber_pipeline_epochs_published_total counter\n\
saber_pipeline_epochs_published_total 3\n\
# TYPE saber_pipeline_delta_epochs_total counter\n\
saber_pipeline_delta_epochs_total 2\n\
# TYPE saber_pipeline_rows_shipped_total counter\n\
saber_pipeline_rows_shipped_total 40\n\
# TYPE saber_pipeline_rows_total counter\n\
saber_pipeline_rows_total 96\n\
# TYPE saber_pipeline_fallbacks_total counter\n\
saber_pipeline_fallbacks_total 1\n\
# TYPE saber_pipeline_publish_micros_total counter\n\
saber_pipeline_publish_micros_total 5200\n\
# TYPE saber_pipeline_last_publish_micros gauge\n\
saber_pipeline_last_publish_micros 1500\n";
    assert!(
        text.contains(expected_block),
        "prometheus exposition missing the pipeline block:\n{text}"
    );
    // The block slots in directly after the replica-admitted gauges, before
    // the serve histograms.
    let after_replicas = text
        .split("saber_router_replica_admitted{shard=\"1\",replica=\"0\"} 1\n")
        .nth(1)
        .expect("replica gauges present");
    assert!(after_replicas.starts_with("# TYPE saber_pipeline_epochs_published_total"));
}

/// The deterministic planted model behind the full-stack fixtures.
fn model() -> LdaModel {
    let mut model = LdaModel::new(12, 3, 0.05, 0.01).unwrap();
    for v in 0..12 {
        model.word_topic_mut()[(v, v % 3)] = 50;
    }
    model.refresh_probabilities();
    model
}

/// One request over a real socket; returns the response body.
fn http_body(addr: std::net::SocketAddr, request: &str) -> String {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(request.as_bytes()).unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).unwrap();
    reply
        .split("\r\n\r\n")
        .nth(1)
        .expect("response has a body")
        .to_string()
}

const INFER_REQUEST_BODY: &str = r#"{"words":[0,3,6,9,0,3],"seed":7}"#;
const INFER_EXPECTED: &str = concat!(
    r#"{"theta":[0.9837398529052734,0.008130080997943878,0.008130080997943878],"#,
    r#""dominant_topic":0,"snapshot_version":1,"n_oov":0,"seed":7}"#,
);

#[test]
fn http_bodies_are_stable_end_to_end_for_a_direct_server() {
    let server = Arc::new(TopicServer::from_model(&model(), ServeConfig::default()).unwrap());
    let http = HttpServer::bind("127.0.0.1:0", server, None, HttpConfig::default()).unwrap();
    assert_eq!(
        http_body(
            http.local_addr(),
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        ),
        r#"{"status":"ok","snapshot_version":1,"n_topics":3,"vocab_size":12,"shards":1}"#,
    );
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        INFER_REQUEST_BODY.len(),
        INFER_REQUEST_BODY
    );
    assert_eq!(http_body(http.local_addr(), &request), INFER_EXPECTED);
    http.shutdown();
}

#[test]
fn http_bodies_are_stable_end_to_end_for_a_sharded_router() {
    // Same endpoints through a 3-shard router: only the `shards` member
    // may differ — and on this fully pinned model even θ's bytes match
    // the direct server's.
    let router = Arc::new(
        ShardRouter::from_model(
            &model(),
            ShardPlan::uniform(12, 3).unwrap(),
            ServeConfig::default(),
        )
        .unwrap(),
    );
    let http = HttpServer::bind("127.0.0.1:0", router, None, HttpConfig::default()).unwrap();
    assert_eq!(
        http_body(
            http.local_addr(),
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        ),
        concat!(
            r#"{"status":"ok","snapshot_version":1,"n_topics":3,"vocab_size":12,"shards":3,"#,
            r#""fleet":[[{"reachable":true,"admitted":true}],[{"reachable":true,"admitted":true}],[{"reachable":true,"admitted":true}]]}"#,
        ),
    );
    let request = format!(
        "POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        INFER_REQUEST_BODY.len(),
        INFER_REQUEST_BODY
    );
    assert_eq!(http_body(http.local_addr(), &request), INFER_EXPECTED);
    http.shutdown();
}

/// One request over a real socket; returns the full raw reply (headers
/// included), for tests that also pin transport-level framing.
fn http_reply(addr: std::net::SocketAddr, request: &str) -> String {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(request.as_bytes()).unwrap();
    let mut reply = String::new();
    conn.read_to_string(&mut reply).unwrap();
    reply
}

#[test]
fn shard_endpoints_are_stable_end_to_end_over_tcp() {
    // A shard process as the router sees it: a direct server whose HTTP
    // config declares the global range it serves.
    let server = Arc::new(TopicServer::from_model(&model(), ServeConfig::default()).unwrap());
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        None,
        HttpConfig {
            shard_range: Some((24, 36)),
            ..HttpConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        http_body(
            http.local_addr(),
            "GET /shard-info HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        ),
        concat!(
            r#"{"epoch":1,"vocab_size":12,"n_topics":3,"alpha":0.05000000074505806,"#,
            r#""shard":[24,36],"fold_in":{"kind":"esca","burn_in":5,"samples":8},"#,
            r#""stats":{"requests":0,"tokens":0,"batches":0,"swaps_observed":0,"#,
            r#""latency":{"sum_us":0,"buckets":[]},"#,
            r#""queue_wait":{"sum_us":0,"buckets":[]},"handler":{"sum_us":0,"buckets":[]}}}"#,
        ),
    );
    // The fan-out request itself: same planted document and seed as the
    // full /infer fixture, as the partial protocol carries it.
    let body = r#"{"words":[0,3,6,9,0,3],"esca":{"seed":7}}"#;
    let request = format!(
        "POST /infer-partial HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    assert_eq!(
        http_body(http.local_addr(), &request),
        r#"{"counts":[48,0,0],"n_words":6,"snapshot_version":1,"n_oov":0,"shard":[24,36]}"#,
    );
    // An EM round over a uniform θ: responsibility counts sum to the
    // document length, deterministically.
    let body = r#"{"words":[0,3,6],"em":{"round":0,"theta":[0.3333333333333333,0.3333333333333333,0.3333333333333333]}}"#;
    let request = format!(
        "POST /infer-partial HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    assert_eq!(
        http_body(http.local_addr(), &request),
        concat!(
            r#"{"counts":[2.9988007195544726,0.0005996402227639496,0.0005996402227639496],"#,
            r#""n_words":3,"snapshot_version":1,"n_oov":0,"shard":[24,36]}"#,
        ),
    );
    http.shutdown();
}

#[test]
fn metrics_exposition_is_stable_end_to_end_over_tcp() {
    // The very first request a fresh server handles is a /metrics scrape:
    // every counter is deterministic (requests=1 — the scrape itself —
    // one live connection, everything else zero).
    let server = Arc::new(TopicServer::from_model(&model(), ServeConfig::default()).unwrap());
    let http = HttpServer::bind("127.0.0.1:0", server, None, HttpConfig::default()).unwrap();
    let reply = http_reply(
        http.local_addr(),
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(
        reply.contains("Content-Type: text/plain; version=0.0.4\r\n"),
        "{reply}"
    );
    let observed = reply.split("\r\n\r\n").nth(1).unwrap();
    let scrape_time_http = HttpStats {
        requests: 1,
        errors: 0,
        active_connections: 1,
        infer: EndpointStats::default(),
        top_words: EndpointStats::default(),
        similar: EndpointStats::default(),
        stats: EndpointStats::default(),
        healthz: EndpointStats::default(),
    };
    let expected = wire::encode_prometheus(&ServeStats::default(), 1, 1, &scrape_time_http, None);
    assert_eq!(observed, expected, "live /metrics diverged from the codec");
    http.shutdown();
}

#[test]
fn router_backed_stats_carry_the_router_block_over_tcp() {
    let router = Arc::new(
        ShardRouter::from_model(
            &model(),
            ShardPlan::uniform(12, 3).unwrap(),
            ServeConfig::default(),
        )
        .unwrap(),
    );
    let http = HttpServer::bind("127.0.0.1:0", router, None, HttpConfig::default()).unwrap();
    let stats_body = http_body(
        http.local_addr(),
        "GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(
        stats_body.contains(concat!(
            r#""router":{"requests":0,"skew_retries":0,"epoch":1,"shards":3,"shard_requests":[0,0,0],"#,
            r#""transport_retries":0,"hedges":0,"breaker_trips":0,"breaker_readmits":0,"#,
            r#""replica_health":[[true],[true],[true]]}"#,
        )),
        "router-backed /stats lost its RouterStats: {stats_body}"
    );
    let metrics_body = http_body(
        http.local_addr(),
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    for line in [
        "saber_router_requests_total 0\n",
        "saber_router_skew_retries_total 0\n",
        "saber_router_transport_retries_total 0\n",
        "saber_router_hedges_total 0\n",
        "saber_router_breaker_trips_total 0\n",
        "saber_router_breaker_readmits_total 0\n",
        "saber_router_shard_requests_total{shard=\"2\"} 0\n",
        "saber_router_replica_admitted{shard=\"2\",replica=\"0\"} 1\n",
        "saber_shards 3\n",
    ] {
        assert!(
            metrics_body.contains(line),
            "missing {line:?}:\n{metrics_body}"
        );
    }
    http.shutdown();
}

#[test]
fn infer_request_decoding_is_stable() {
    use saberlda::serve::wire::InferBody;
    use saberlda::OovPolicy;
    // The id form, the token form, and the guard rails — pinned, since a
    // request decoder that drifts breaks every deployed client at once.
    let ids = wire::decode_infer(r#"{"words":[0,3,6],"seed":7}"#).unwrap();
    assert_eq!(ids.body, InferBody::Words(vec![0, 3, 6]));
    assert_eq!(ids.seed, Some(7));
    let raw = wire::decode_infer(r#"{"tokens":["dog","cat"],"oov":"fail"}"#).unwrap();
    assert_eq!(
        raw.body,
        InferBody::Tokens {
            tokens: vec!["dog".into(), "cat".into()],
            policy: OovPolicy::Fail,
        }
    );
    assert_eq!(raw.seed, None);
    // `oov` defaults to skip; `words` and `tokens` are mutually exclusive.
    let skip = wire::decode_infer(r#"{"tokens":[]}"#).unwrap();
    assert!(matches!(
        skip.body,
        InferBody::Tokens {
            policy: OovPolicy::Skip,
            ..
        }
    ));
    assert!(wire::decode_infer(r#"[0,3]"#).is_err());
    assert!(wire::decode_infer(r#"{"words":[0],"tokens":["x"]}"#).is_err());
    assert!(wire::decode_infer(r#"{"words":[4294967296]}"#).is_err());
}

#[test]
fn histogram_bytes_are_stable() {
    let h = LatencyHistogram::new();
    h.record(Duration::from_micros(800));
    h.record(Duration::from_micros(1500));
    assert_eq!(
        wire::encode_histogram(&h.snapshot()).to_string(),
        concat!(
            r#"{"count":2,"mean_us":1150,"p50_us":724.0773439350247,"#,
            r#""p95_us":1448.1546878700494,"p99_us":1448.1546878700494}"#,
        ),
    );
    // Quantiles are null (not 0, not NaN) until the first sample.
    assert_eq!(
        wire::encode_histogram(&LatencyHistogram::new().snapshot()).to_string(),
        r#"{"count":0,"mean_us":null,"p50_us":null,"p95_us":null,"p99_us":null}"#,
    );
}

#[test]
fn histogram_overflow_member_appears_only_when_clamped() {
    // ISSUE 8 satellite: a sample at or above the top bucket bound (2^40
    // µs) no longer folds in silently — the JSON grows an `overflow`
    // member. Overflow-free histograms keep the exact PR 4 bytes (pinned
    // above), so clients never see the member until it means something.
    let h = LatencyHistogram::new();
    h.record(Duration::from_micros(800));
    h.record(Duration::from_micros(1 << 40));
    let encoded = wire::encode_histogram(&h.snapshot()).to_string();
    assert!(
        encoded.ends_with(r#","overflow":1}"#),
        "overflow member missing: {encoded}"
    );
    // The lossless shard-info codec round-trips the overflow count too.
    let stats = ServeStats {
        requests: 2,
        tokens: 4,
        batches: 1,
        swaps_observed: 0,
        latency: h.snapshot(),
        queue_wait: LatencyHistogram::new().snapshot(),
        handler: LatencyHistogram::new().snapshot(),
    };
    let info = ShardInfo {
        epoch: 1,
        vocab_size: 12,
        n_topics: 3,
        alpha: 0.05,
        shard_range: (0, 12),
        fold_in: FoldInParams::default(),
        stats,
    };
    let encoded = wire::encode_shard_info(&info).to_string();
    assert!(
        encoded.contains(r#""overflow":1"#),
        "sparse histogram lost the overflow count: {encoded}"
    );
    let decoded = wire::decode_shard_info(&encoded).unwrap();
    assert_eq!(decoded.stats.latency.overflow(), 1);
    assert_eq!(decoded, info);
    // Peers predating the counter (no `overflow` member) decode as zero.
    let legacy = encoded.replace(r#","overflow":1"#, "");
    assert_eq!(
        wire::decode_shard_info(&legacy)
            .unwrap()
            .stats
            .latency
            .overflow(),
        0
    );
    // And /metrics reports the clamp as an explicit counter.
    let http = HttpStats {
        requests: 0,
        errors: 0,
        active_connections: 0,
        infer: EndpointStats::default(),
        top_words: EndpointStats::default(),
        similar: EndpointStats::default(),
        stats: EndpointStats::default(),
        healthz: EndpointStats::default(),
    };
    let text = wire::encode_prometheus(&info.stats, 1, 1, &http, None);
    assert!(
        text.contains("saber_serve_latency_overflow_total 1\n"),
        "{text}"
    );
    assert!(text.contains("saber_serve_handler_overflow_total 0\n"));
}

#[test]
fn serve_error_decoding_inverts_the_status_table() {
    use saberlda::serve::ServeError;
    // The router's retry logic keys on these variants, so the mapping from
    // (status, canonical Display text) back to ServeError is wire contract.
    assert!(matches!(
        wire::decode_serve_error(429, r#"{"error":"queue full","status":429}"#),
        ServeError::Overloaded
    ));
    assert!(matches!(
        wire::decode_serve_error(503, r#"{"error":"request deadline exceeded","status":503}"#),
        ServeError::DeadlineExceeded
    ));
    assert!(matches!(
        wire::decode_serve_error(
            503,
            r#"{"error":"shard snapshot versions diverged during the request","status":503}"#
        ),
        ServeError::ShardVersionSkew
    ));
    assert!(matches!(
        wire::decode_serve_error(503, r#"{"error":"connection limit reached","status":503}"#),
        ServeError::Overloaded
    ));
    assert!(matches!(
        wire::decode_serve_error(
            503,
            r#"{"error":"serving worker pool has shut down","status":503}"#
        ),
        ServeError::Closed
    ));
    match wire::decode_serve_error(400, r#"{"error":"bad request: word id 99","status":400}"#) {
        ServeError::BadRequest { detail } => assert_eq!(detail, "bad request: word id 99"),
        other => panic!("400 decoded as {other:?}"),
    }
    // An unparseable body still yields a useful transport error.
    match wire::decode_serve_error(418, "not json") {
        ServeError::Transport {
            detail,
            shard,
            addr,
        } => {
            assert!(detail.contains("418"), "{detail}");
            // Attribution (which shard, which address) is stamped by the
            // transport, not the decoder: it starts out unattributed.
            assert_eq!(shard, None);
            assert_eq!(addr, None);
        }
        other => panic!("unknown status decoded as {other:?}"),
    }
}

#[test]
fn trace_recent_bytes_are_stable() {
    // The `GET /trace/recent` body: the recent ring plus the slow-request
    // capture, each trace a flat span list keyed by id/parent.
    let trace = Trace {
        trace_id: TraceId::from_raw(0xabc).unwrap(),
        total_us: 1500,
        spans: vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "ingress".to_string(),
                start_us: 0,
                duration_us: 1500,
                events: vec![SpanEvent {
                    at_us: 700,
                    message: "epoch observed 3".to_string(),
                }],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "handler".to_string(),
                start_us: 10,
                duration_us: 1400,
                events: Vec::new(),
            },
        ],
    };
    let encoded = wire::encode_trace_recent(std::slice::from_ref(&trace), &[], 250_000).to_string();
    assert_eq!(
        encoded,
        concat!(
            r#"{"recent":[{"trace_id":"0000000000000abc","total_us":1500,"spans":["#,
            r#"{"id":1,"parent":null,"name":"ingress","start_us":0,"duration_us":1500,"#,
            r#""events":[{"at_us":700,"message":"epoch observed 3"}]},"#,
            r#"{"id":2,"parent":1,"name":"handler","start_us":10,"duration_us":1400}]}],"#,
            r#""slow":{"threshold_us":250000,"traces":[]}}"#,
        ),
    );
    // The client half: `decode_trace_recent` recovers the ring exactly
    // (ids, parents, events and all), which is what lets the distributed
    // tracing tests assert on assembled cross-process trees.
    let decoded = wire::decode_trace_recent(&encoded).unwrap();
    assert_eq!(decoded, vec![trace]);
    // A trace that lands in the slow capture also appears under `slow`
    // with the configured threshold; `decode_trace_recent` reads only the
    // ring, so the slow list never double-counts in clients.
    let slow = wire::encode_trace_recent(&[], &decoded, 250_000).to_string();
    assert!(
        slow.starts_with(r#"{"recent":[],"slow":{"threshold_us":250000,"traces":[{"trace_id""#),
        "{slow}"
    );
    assert_eq!(wire::decode_trace_recent(&slow).unwrap(), Vec::new());
}

#[test]
fn top_words_decoding_is_stable() {
    // The client half of `top_words_bytes_are_stable`'s fixture: decode is
    // the exact inverse of encode on the pinned bytes.
    let decoded = wire::decode_top_words(
        r#"{"topic":1,"words":[{"word":0,"prob":0.5,"token":"w00000"},{"word":3,"prob":0.25,"token":"w00003"}]}"#,
    )
    .unwrap();
    assert_eq!(decoded, vec![(0, 0.5), (3, 0.25)]);
    assert!(wire::decode_top_words(r#"{"topic":1}"#).is_err());
    assert!(wire::decode_top_words(r#"{"words":[{"word":-1,"prob":0.5}]}"#).is_err());
}

#[test]
fn healthz_version_decoding_is_stable() {
    // The epoch probe decodes against the healthz fixture pinned by the
    // end-to-end tests above.
    assert_eq!(
        wire::decode_healthz_version(
            r#"{"status":"ok","snapshot_version":3,"n_topics":3,"vocab_size":12,"shards":1}"#
        )
        .unwrap(),
        3
    );
    assert!(wire::decode_healthz_version(r#"{"status":"ok"}"#).is_err());
}

#[test]
fn json_codec_primitives_are_stable() {
    use saberlda::core::json::{parse, JsonValue};
    // The formatting rules everything above relies on, pinned directly.
    for (value, expected) in [
        (JsonValue::from(u64::MAX), "18446744073709551615"),
        (JsonValue::Number(1.5), "1.5"),
        (JsonValue::Number(1.0), "1"),
        (JsonValue::Number(f64::NAN), "null"),
        (JsonValue::Number(0.1), "0.1"),
        (JsonValue::from("a\"b\\c\nd"), r#""a\"b\\c\nd""#),
        (JsonValue::f32_array(&[0.1f32]), "[0.10000000149011612]"),
    ] {
        assert_eq!(value.to_string(), expected);
    }
    // Round trip: parse(serialise(x)) == x for a nested document.
    let doc = r#"{"a":[1,2.5,null,true,"x"],"b":{"c":18446744073709551615}}"#;
    assert_eq!(parse(doc).unwrap().to_string(), doc);
}
